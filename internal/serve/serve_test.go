package serve

// httptest suite for the risk-query server: success paths for every
// endpoint, malformed-input 400s, 404s, the 499-style abort for
// canceled request contexts, metrics accounting, study-cache
// singleflight/LRU behavior and concurrent access (exercised under
// `make race`).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fivealarms"
	"fivealarms/internal/serve/api"
)

// testCfg is the suite's study scale: small enough that the first
// build stays well under a second.
var testCfg = fivealarms.Config{
	Seed: 42, CellSizeM: 40000, Transceivers: 5000, MappedFiresPerSeason: 5,
}

var (
	srvOnce sync.Once
	srv     *Server
	srvErr  error
)

// testServer returns a shared warm server; building a study per test
// would dominate the suite's runtime.
func testServer(t *testing.T) *Server {
	t.Helper()
	srvOnce.Do(func() {
		srv, srvErr = New(context.Background(), Options{Config: testCfg})
		if srvErr == nil {
			srvErr = srv.Warm(context.Background())
		}
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srv
}

// do runs one request through the handler and returns the recorder.
func do(t *testing.T, s *Server, method, target string, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w
}

// decode unmarshals a response body, failing the test on malformed JSON.
func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %T from %s: %v", v, w.Body.String(), err)
	}
	return v
}

// testBreaker returns a permissive breaker for cache-focused tests:
// three failures to open, millisecond backoffs.
func testBreaker() *buildBreaker {
	return newBuildBreaker(3, time.Millisecond, 10*time.Millisecond, 1)
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	w := do(t, s, "GET", "/v1/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	h := decode[api.Health](t, w)
	if h.Version != "v1" || h.Status != "ok" || h.DefaultSeed != 42 || h.StudiesCached < 1 {
		t.Errorf("health = %+v", h)
	}
}

func TestRiskPoint(t *testing.T) {
	s := testServer(t)
	// Sacramento-ish: on CONUS, in California.
	w := do(t, s, "GET", "/v1/risk/point?lon=-121.5&lat=38.6", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	p := decode[api.PointRisk](t, w)
	if !p.OnConus || p.State != "CA" {
		t.Errorf("point = %+v, want on-CONUS CA", p)
	}
	if p.HazardClass == "" || p.HazardValue < 0 || p.HazardValue > 1 {
		t.Errorf("hazard fields malformed: %+v", p)
	}
	if p.NearestFireDistM < -1 {
		t.Errorf("nearest fire distance = %v", p.NearestFireDistM)
	}

	// Mid-Atlantic: off CONUS, no state, distances still well-formed.
	w = do(t, s, "GET", "/v1/risk/point?lon=-40&lat=35", "")
	off := decode[api.PointRisk](t, w)
	if w.Code != http.StatusOK || off.OnConus || off.State != "" {
		t.Errorf("ocean point: code %d, %+v", w.Code, off)
	}

	// Determinism: the identical query returns the identical bytes.
	a := do(t, s, "GET", "/v1/risk/point?lon=-121.5&lat=38.6", "").Body.String()
	b := do(t, s, "GET", "/v1/risk/point?lon=-121.5&lat=38.6", "").Body.String()
	if a != b {
		t.Error("identical point queries produced different bytes")
	}
}

func TestRiskPointBadInput(t *testing.T) {
	s := testServer(t)
	cases := []string{
		"/v1/risk/point",                          // both missing
		"/v1/risk/point?lon=-120",                 // lat missing
		"/v1/risk/point?lon=abc&lat=38",           // not a number
		"/v1/risk/point?lon=NaN&lat=38",           // not finite
		"/v1/risk/point?lon=-500&lat=38",          // out of range
		"/v1/risk/point?lon=-120&lat=95",          // out of range
		"/v1/risk/point?lon=-120&lat=38&seed=-1",  // bad seed override
		"/v1/risk/point?lon=-120&lat=38&seed=zzz", // bad seed override
	}
	for _, target := range cases {
		w := do(t, s, "GET", target, "")
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", target, w.Code, w.Body)
			continue
		}
		e := decode[api.Error](t, w)
		if e.Version != "v1" || e.Status != http.StatusBadRequest || e.Message == "" {
			t.Errorf("%s: error body = %+v", target, e)
		}
	}
}

func TestRiskBBox(t *testing.T) {
	s := testServer(t)
	// All of California and then some.
	w := do(t, s, "GET", "/v1/risk/bbox?min_lon=-125&min_lat=32&max_lon=-114&max_lat=42", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	b := decode[api.BBoxRisk](t, w)
	if b.Transceivers == 0 {
		t.Error("California box contains no transceivers")
	}
	sum := 0
	for _, n := range b.ByClass {
		sum += n
	}
	if sum != b.Transceivers {
		t.Errorf("by_class sums to %d, want %d", sum, b.Transceivers)
	}
	if b.AtRisk > b.Transceivers || b.InHistoricalPerimeter > b.Transceivers {
		t.Errorf("counts inconsistent: %+v", b)
	}

	// Degenerate box (a point) is valid; inverted box is not.
	if w := do(t, s, "GET", "/v1/risk/bbox?min_lon=-120&min_lat=38&max_lon=-120&max_lat=38", ""); w.Code != http.StatusOK {
		t.Errorf("point-box status = %d", w.Code)
	}
	if w := do(t, s, "GET", "/v1/risk/bbox?min_lon=-114&min_lat=32&max_lon=-125&max_lat=42", ""); w.Code != http.StatusBadRequest {
		t.Errorf("inverted-box status = %d, want 400", w.Code)
	}
	if w := do(t, s, "GET", "/v1/risk/bbox?min_lon=-125&min_lat=32&max_lon=-114", ""); w.Code != http.StatusBadRequest {
		t.Errorf("missing-param status = %d, want 400", w.Code)
	}
}

func TestTables(t *testing.T) {
	s := testServer(t)
	t1 := decode[api.Table1](t, do(t, s, "GET", "/v1/tables/1", ""))
	if len(t1.Rows) == 0 || t1.Version != "v1" {
		t.Errorf("table1 = %+v", t1)
	}
	total := 0
	for _, r := range t1.Rows {
		total += r.TransceiversIn
	}
	if total != t1.TotalInPerimeters {
		t.Errorf("total_in_perimeters = %d, rows sum to %d", t1.TotalInPerimeters, total)
	}
	t2 := decode[api.Table2](t, do(t, s, "GET", "/v1/tables/2", ""))
	if len(t2.Rows) == 0 {
		t.Error("table2 empty")
	}
	t3 := decode[api.Table3](t, do(t, s, "GET", "/v1/tables/3", ""))
	if len(t3.Rows) == 0 {
		t.Error("table3 empty")
	}
	if w := do(t, s, "GET", "/v1/tables/4", ""); w.Code != http.StatusNotFound {
		t.Errorf("table 4 status = %d, want 404", w.Code)
	}
	if w := do(t, s, "GET", "/v1/tables/one", ""); w.Code != http.StatusNotFound {
		t.Errorf("table 'one' status = %d, want 404", w.Code)
	}
}

func TestOverlayAndValidate(t *testing.T) {
	s := testServer(t)
	o := decode[api.WHPOverlay](t, do(t, s, "GET", "/v1/overlay/whp", ""))
	// The generator deduplicates colliding placements, so the fleet is
	// slightly under the requested snapshot size.
	if o.Total == 0 || o.Total > testCfg.Transceivers {
		t.Errorf("overlay total = %d, want (0, %d]", o.Total, testCfg.Transceivers)
	}
	atRisk := o.ByClass["moderate"] + o.ByClass["high"] + o.ByClass["very-high"]
	if atRisk != o.AtRisk {
		t.Errorf("at_risk = %d, class sum = %d", o.AtRisk, atRisk)
	}
	for i := 1; i < len(o.States); i++ {
		if o.States[i-1].State >= o.States[i].State {
			t.Errorf("states not sorted: %q before %q", o.States[i-1].State, o.States[i].State)
		}
	}
	v := decode[api.Validation](t, do(t, s, "GET", "/v1/validate", ""))
	if v.Version != "v1" || v.AccuracyPct < 0 || v.AccuracyPct > 100 {
		t.Errorf("validation = %+v", v)
	}
}

func TestExtend(t *testing.T) {
	s := testServer(t)
	w := do(t, s, "POST", "/v1/extend", `{"cell_size_m": 0, "dist_m": 0}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	coarse := decode[api.Extend](t, w)
	if coarse.Fine || coarse.VHAfter < coarse.VHBefore {
		t.Errorf("coarse extend = %+v", coarse)
	}
	fine := decode[api.Extend](t, do(t, s, "POST", "/v1/extend", `{"cell_size_m": 800}`))
	if !fine.Fine || fine.CellSizeM != 800 {
		t.Errorf("fine extend = %+v", fine)
	}

	bad := []string{
		``,                                  // empty body
		`{`,                                 // malformed JSON
		`{"cell_size_m": "x"}`,              // wrong type
		`{"cell_size_m": 50}`,               // below the floor
		`{"cell_size_m": -1}`,               // negative
		`{"dist_m": -5}`,                    // negative
		`{"dist_m": 1e9}`,                   // beyond the cap
		`{"unknown_field": 1}`,              // unknown field rejected
		`{"cell_size_m": 800, "dist_m": 0,`, // truncated
	}
	for _, body := range bad {
		if w := do(t, s, "POST", "/v1/extend", body); w.Code != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, w.Code)
		}
	}
	// Wrong method on the route.
	if w := do(t, s, "GET", "/v1/extend", ""); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/extend status = %d, want 405", w.Code)
	}
}

// TestCanceledRequest asserts the 499-style abort: a request arriving
// with an already-canceled context fails with the client-closed status
// without touching the study.
func TestCanceledRequest(t *testing.T) {
	s := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := httptest.NewRequest("GET", "/v1/risk/point?lon=-120&lat=38", nil).WithContext(ctx)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d (body %s)", w.Code, StatusClientClosedRequest, w.Body)
	}
	e := decode[api.Error](t, w)
	if e.Status != StatusClientClosedRequest {
		t.Errorf("error body = %+v", e)
	}
}

// TestCanceledWaiterDoesNotKillBuild: a waiter abandoning a shared
// in-flight build gets its context error while the build completes for
// the next caller.
func TestCanceledWaiterDoesNotKillBuild(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var builds atomic.Int32
	c := newStudyCache(context.Background(), 2, testBreaker(),
		func(ctx context.Context, cfg fivealarms.Config) (*fivealarms.Study, error) {
			builds.Add(1)
			close(started)
			<-release
			return &fivealarms.Study{}, nil
		})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Get(ctx, testCfg)
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v, want context.Canceled", err)
	}
	close(release)
	if _, err := c.Get(context.Background(), testCfg); err != nil {
		t.Fatalf("second caller: %v", err)
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("builds = %d, want 1 (singleflight)", n)
	}
}

func TestCacheSingleflightAndLRU(t *testing.T) {
	var builds atomic.Int32
	c := newStudyCache(context.Background(), 2, testBreaker(),
		func(ctx context.Context, cfg fivealarms.Config) (*fivealarms.Study, error) {
			builds.Add(1)
			return &fivealarms.Study{}, nil
		})

	// 16 concurrent requests for one key → one build.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Get(context.Background(), testCfg); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builds = %d, want 1", n)
	}

	// Three distinct seeds through a 2-slot cache evict the LRU.
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := testCfg
		cfg.Seed = seed
		if _, err := c.Get(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Errorf("cache len = %d, want 2", c.Len())
	}
	before := builds.Load()
	cfg := testCfg
	cfg.Seed = 3 // MRU: still resident
	if _, err := c.Get(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != before {
		t.Error("MRU entry was rebuilt")
	}
}

func TestCacheFailedBuildRearms(t *testing.T) {
	var builds atomic.Int32
	c := newStudyCache(context.Background(), 2, testBreaker(),
		func(ctx context.Context, cfg fivealarms.Config) (*fivealarms.Study, error) {
			if builds.Add(1) == 1 {
				return nil, fmt.Errorf("transient failure")
			}
			return &fivealarms.Study{}, nil
		})
	if _, err := c.Get(context.Background(), testCfg); err == nil {
		t.Fatal("first build should fail")
	}
	if _, err := c.Get(context.Background(), testCfg); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if n := builds.Load(); n != 2 {
		t.Errorf("builds = %d, want 2 (failure re-arms)", n)
	}
}

func TestSeedOverrideBuildsDistinctStudy(t *testing.T) {
	s := testServer(t)
	base := decode[api.Health](t, do(t, s, "GET", "/v1/healthz", "")).StudiesCached
	w := do(t, s, "GET", "/v1/tables/1?seed=43", "")
	if w.Code != http.StatusOK {
		t.Fatalf("seed override status = %d, body %s", w.Code, w.Body)
	}
	after := decode[api.Health](t, do(t, s, "GET", "/v1/healthz", "")).StudiesCached
	if after <= base {
		t.Errorf("studies cached %d -> %d, want growth after seed override", base, after)
	}
}

func TestMetricsAccounting(t *testing.T) {
	s := testServer(t)
	read := func() map[string]api.EndpointMetrics {
		m := decode[api.Metrics](t, do(t, s, "GET", "/v1/metrics", ""))
		out := map[string]api.EndpointMetrics{}
		for _, e := range m.Endpoints {
			out[e.Endpoint] = e
		}
		return out
	}
	before := read()
	do(t, s, "GET", "/v1/risk/point?lon=-120&lat=38", "")
	do(t, s, "GET", "/v1/risk/point?lon=bogus&lat=38", "")
	after := read()
	if d := after["risk_point"].Requests - before["risk_point"].Requests; d != 2 {
		t.Errorf("risk_point requests grew by %d, want 2", d)
	}
	if d := after["risk_point"].Errors - before["risk_point"].Errors; d != 1 {
		t.Errorf("risk_point errors grew by %d, want 1", d)
	}
	if p := after["risk_point"].P50Ms; p <= 0 {
		t.Errorf("p50 = %v, want a positive bucket bound", p)
	}
}

func TestMetricsQuantiles(t *testing.T) {
	m := NewMetrics("ep")
	if q := m.endpoints["ep"].quantile(0.5); q != -1 {
		t.Errorf("empty quantile = %v, want -1", q)
	}
	for i := 0; i < 99; i++ {
		m.Observe("ep", 200*time.Microsecond, false) // 0.2ms → 0.25 bucket
	}
	m.Observe("ep", 40*time.Millisecond, true) // one slow error → 50 bucket
	st := m.endpoints["ep"]
	if q := st.quantile(0.5); q != 0.25 {
		t.Errorf("p50 = %v, want 0.25", q)
	}
	if q := st.quantile(0.99); q != 0.25 {
		t.Errorf("p99 = %v, want 0.25 (99 of 100 in bucket)", q)
	}
	if q := st.quantile(1.0); q != 50 {
		t.Errorf("p100 = %v, want 50", q)
	}
	// Overflow observations report the largest finite bound.
	m.Observe("ep", time.Hour, false)
	if q := st.quantile(1.0); q != 5000 {
		t.Errorf("overflow quantile = %v, want 5000", q)
	}
	snap := m.Snapshot()
	if len(snap.Endpoints) != 1 || snap.Endpoints[0].Requests != 101 || snap.Endpoints[0].Errors != 1 {
		t.Errorf("snapshot = %+v", snap.Endpoints)
	}
}

// TestMetricsEdgeBuckets pins the histogram boundary semantics: a
// zero-latency observation lands in the first bucket, an observation
// exactly on the last finite bound (5000 ms) is inclusive, and
// anything beyond goes to the overflow bucket.
func TestMetricsEdgeBuckets(t *testing.T) {
	var st endpointStats
	st.observe(0, false)
	if got := st.buckets[0].Load(); got != 1 {
		t.Errorf("0ms landed outside the first bucket (bucket0 = %d)", got)
	}
	st.observe(5000, false)
	if got := st.buckets[len(bucketBoundsMs)-1].Load(); got != 1 {
		t.Errorf("5000ms not inclusive in the last finite bucket (got %d)", got)
	}
	st.observe(5000.0001, false)
	st.observe(1e12, false)
	if got := st.buckets[numBuckets-1].Load(); got != 2 {
		t.Errorf("overflow bucket = %d, want 2", got)
	}
	// Quantiles over edge data stay within the finite bounds.
	if q := st.quantile(1.0); q != bucketBoundsMs[len(bucketBoundsMs)-1] {
		t.Errorf("p100 with overflow = %v, want %v", q, bucketBoundsMs[len(bucketBoundsMs)-1])
	}
	if q := st.quantile(0.0); q != bucketBoundsMs[0] {
		t.Errorf("p0 = %v, want first bound %v", q, bucketBoundsMs[0])
	}
}

// TestCacheConcurrentEvictionAndRearm hammers a 2-slot cache from many
// goroutines across six keys where half the builds always fail:
// eviction, failure re-arm, last-good recording and the breaker race
// together (meaningful under -race), and the cache must end bounded
// and healthy for the succeeding keys.
func TestCacheConcurrentEvictionAndRearm(t *testing.T) {
	var builds atomic.Int32
	c := newStudyCache(context.Background(), 2, testBreaker(),
		func(ctx context.Context, cfg fivealarms.Config) (*fivealarms.Study, error) {
			builds.Add(1)
			if cfg.Seed%2 == 1 {
				return nil, fmt.Errorf("seed %d always fails", cfg.Seed)
			}
			return &fivealarms.Study{}, nil
		})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cfg := testCfg
				cfg.Seed = uint64(1 + (g+i)%6)
				e, err := c.Get(context.Background(), cfg)
				if cfg.Seed%2 == 0 {
					// Even seeds may be shed while odd-seed circuits
					// churn, but a granted build must succeed.
					if err == nil && e.study == nil {
						t.Errorf("seed %d: nil study without error", cfg.Seed)
					}
				} else if err == nil {
					t.Errorf("seed %d: build should always fail", cfg.Seed)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 2 {
		t.Errorf("cache len = %d, want <= 2", n)
	}
	// Failed keys re-armed throughout: far more builds than keys.
	if n := builds.Load(); n < 6 {
		t.Errorf("builds = %d, want re-arming across keys", n)
	}
	// A succeeding key is still servable after the churn.
	cfg := testCfg
	cfg.Seed = 2
	if _, err := c.Get(context.Background(), cfg); err != nil {
		t.Errorf("post-churn Get(seed 2): %v", err)
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	bad := testCfg
	bad.Transceivers = -1
	if _, err := New(context.Background(), Options{Config: bad}); err == nil {
		t.Fatal("invalid config accepted at server construction")
	}
}

// TestConcurrentMixedLoad hammers the warm server from many goroutines
// (meaningful under `make race`).
func TestConcurrentMixedLoad(t *testing.T) {
	s := testServer(t)
	targets := []string{
		"/v1/healthz",
		"/v1/metrics",
		"/v1/risk/point?lon=-120.1&lat=38.2",
		"/v1/risk/bbox?min_lon=-125&min_lat=32&max_lon=-114&max_lat=42",
		"/v1/tables/1",
		"/v1/tables/2",
		"/v1/overlay/whp",
		"/v1/validate",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				target := targets[(g+i)%len(targets)]
				w := do(t, s, "GET", target, "")
				if w.Code != http.StatusOK {
					t.Errorf("%s: status %d", target, w.Code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestGracefulShutdownDrains starts a real listener, parks a request
// in-flight, sends Shutdown and asserts the request completes rather
// than being aborted.
func TestGracefulShutdownDrains(t *testing.T) {
	s := testServer(t)
	slow := make(chan struct{})
	inFlight := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(inFlight)
		<-slow
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "drained")
	})
	mux.Handle("/", s.Handler())
	ts := httptest.NewServer(mux)
	hs := ts.Config

	resc := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/slow")
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("slow request status %d", resp.StatusCode)
			}
		}
		resc <- err
	}()
	<-inFlight

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- hs.Shutdown(ctx)
	}()
	// Shutdown must wait for the parked request; release it and both
	// the request and the drain should finish cleanly.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before the in-flight request finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(slow)
	if err := <-resc; err != nil {
		t.Errorf("in-flight request: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestStudyKeyCoversShardingFields: the cache key must distinguish
// configurations that differ only in the sharded-execution fields, so
// a sharded or snapshot-loaded study can never be served from a
// monolithic entry (the results are identical, but the operator asked
// for a specific execution shape and ShardStats must reflect it).
func TestStudyKeyCoversShardingFields(t *testing.T) {
	base := keyOf(testCfg)
	sharded := testCfg
	sharded.Shards = 4
	if keyOf(sharded) == base {
		t.Error("Shards does not participate in the study key")
	}
	snap := testCfg
	snap.SnapshotPath = "/tmp/fleet.fa5c"
	if keyOf(snap) == base {
		t.Error("SnapshotPath does not participate in the study key")
	}
}
