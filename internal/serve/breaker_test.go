package serve

// Deterministic unit tests for the keyed build circuit breaker, driven
// by a fake clock: closed → open after the failure threshold, backoff
// growth and cap, the half-open probe, and per-key independence.

import (
	"testing"
	"time"
)

// fakeClock lets breaker tests advance time explicitly.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func clocked(b *buildBreaker, c *fakeClock) *buildBreaker {
	b.now = c.now
	return b
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clock := newFakeClock()
	b := clocked(newBuildBreaker(3, time.Second, time.Minute, 7), clock)
	key := keyOf(testCfg)

	var opens, probes, closes int
	b.onOpen = func() { opens++ }
	b.onProbe = func() { probes++ }
	b.onClose = func() { closes++ }

	// Two failures: still closed, attempts admitted.
	for i := 0; i < 2; i++ {
		if _, ok := b.Allow(key); !ok {
			t.Fatalf("attempt %d denied while closed", i)
		}
		b.OnFailure(key)
	}
	if st := b.Status(key); st != breakerClosed {
		t.Fatalf("status after 2 failures = %v, want closed", st)
	}
	// Third failure trips the circuit.
	b.OnFailure(key)
	if st := b.Status(key); st != breakerOpen {
		t.Fatalf("status after 3 failures = %v, want open", st)
	}
	if opens != 1 {
		t.Errorf("onOpen fired %d times, want 1", opens)
	}

	// While open: denied, with a Retry-After inside the jittered
	// first-open window [base/2, base).
	retry, ok := b.Allow(key)
	if ok {
		t.Fatal("open circuit admitted an attempt")
	}
	if retry < 0 || retry >= time.Second {
		t.Errorf("retryAfter = %v, want within (0, 1s)", retry)
	}

	// After the backoff elapses the next attempt is the half-open probe.
	clock.advance(time.Second)
	if _, ok := b.Allow(key); !ok {
		t.Fatal("post-backoff attempt denied, want half-open probe admitted")
	}
	if probes != 1 {
		t.Errorf("onProbe fired %d times, want 1", probes)
	}
	if st := b.Status(key); st != breakerHalfOpen {
		t.Fatalf("status = %v, want half-open", st)
	}
	// A second attempt during the probe is denied.
	if _, ok := b.Allow(key); ok {
		t.Fatal("second attempt admitted during half-open probe")
	}

	// Probe success closes the circuit and forgets the history.
	b.OnSuccess(key)
	if st := b.Status(key); st != breakerClosed {
		t.Fatalf("status after probe success = %v, want closed", st)
	}
	if closes != 1 {
		t.Errorf("onClose fired %d times, want 1", closes)
	}
	if _, ok := b.Allow(key); !ok {
		t.Fatal("closed circuit denied an attempt")
	}
}

func TestBreakerProbeFailureBacksOffExponentially(t *testing.T) {
	clock := newFakeClock()
	b := clocked(newBuildBreaker(1, time.Second, 8*time.Second, 7), clock)
	key := keyOf(testCfg)

	// Each cycle: fail (opens), wait out the backoff, probe, fail again.
	// The nth open's backoff is jittered into [base·2ⁿ/2, base·2ⁿ),
	// capped at max.
	b.OnFailure(key)
	for n := 1; n < 6; n++ {
		retry, ok := b.Allow(key)
		if ok {
			t.Fatalf("cycle %d: open circuit admitted", n)
		}
		want := time.Second << (n - 1) // base·2ⁿ⁻¹ before jitter
		if want > 8*time.Second {
			want = 8 * time.Second
		}
		if retry < want/2 || retry >= want {
			t.Errorf("cycle %d: retryAfter = %v, want within [%v, %v)", n, retry, want/2, want)
		}
		clock.advance(want) // past any jittered deadline in [want/2, want)
		if _, ok := b.Allow(key); !ok {
			t.Fatalf("cycle %d: probe denied after backoff", n)
		}
		b.OnFailure(key) // probe fails → reopen, doubled
	}
}

func TestBreakerKeysAreIndependent(t *testing.T) {
	clock := newFakeClock()
	b := clocked(newBuildBreaker(1, time.Second, time.Minute, 7), clock)
	cfgB := testCfg
	cfgB.Seed = 99
	keyA, keyB := keyOf(testCfg), keyOf(cfgB)

	b.OnFailure(keyA)
	if _, ok := b.Allow(keyA); ok {
		t.Fatal("keyA should be open")
	}
	if _, ok := b.Allow(keyB); !ok {
		t.Fatal("keyB tripped by keyA's failures")
	}
	if st := b.Status(keyB); st != breakerClosed {
		t.Errorf("keyB status = %v, want closed", st)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b := newBuildBreaker(3, time.Second, time.Minute, 7)
	key := keyOf(testCfg)
	// Two failures, a success, two more failures: never opens.
	b.OnFailure(key)
	b.OnFailure(key)
	b.OnSuccess(key)
	b.OnFailure(key)
	b.OnFailure(key)
	if st := b.Status(key); st != breakerClosed {
		t.Fatalf("status = %v, want closed (success resets the streak)", st)
	}
}

func TestBreakerStatusStrings(t *testing.T) {
	for st, want := range map[breakerStatus]string{
		breakerClosed:   "closed",
		breakerOpen:     "open",
		breakerHalfOpen: "half-open",
	} {
		if got := st.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(st), got, want)
		}
	}
}

func TestBreakerJitterDeterministic(t *testing.T) {
	mk := func() []time.Duration {
		b := newBuildBreaker(1, time.Second, time.Minute, 42)
		var out []time.Duration
		for i := 0; i < 4; i++ {
			b.mu.Lock()
			out = append(out, b.backoffLocked(i))
			b.mu.Unlock()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff sequence diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
