package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"fivealarms/internal/serve/api"
)

// routeClass groups endpoints by cost for the deadline and admission
// middleware. Cheap cached reads get short deadlines and one weight
// unit; expensive requests (extend analyses and anything that can
// commission a cold study build) get long deadlines and several units;
// exempt routes (health, metrics) bypass admission entirely so the
// server stays observable under overload.
type routeClass struct {
	name     string
	deadline time.Duration
	weight   int // admission weight; 0 bypasses the limiter
	// fastDegrade serves the last-known-good study immediately when the
	// requested one is mid-(re)build, instead of stalling a cheap read
	// against a deadline it would blow anyway.
	fastDegrade bool
}

// shedKind distinguishes why a request was rejected, for metrics.
type shedKind int

const (
	shedQueue   shedKind = iota // admission queue full → 429
	shedBreaker                 // build circuit open → 503
)

// overloadError is a typed load-shedding rejection: it carries the
// response status (429 or 503) and the Retry-After hint.
type overloadError struct {
	status     int
	kind       shedKind
	retryAfter time.Duration
	msg        string
}

func (e *overloadError) Error() string { return e.msg }

// errQueueFull builds the 429 returned when the admission queue is at
// capacity.
func errQueueFull(maxQueue int) error {
	return &overloadError{
		status:     http.StatusTooManyRequests,
		kind:       shedQueue,
		retryAfter: time.Second,
		msg:        fmt.Sprintf("server overloaded: admission queue full (%d waiting); retry later", maxQueue),
	}
}

// reqState is the per-request middleware state handlers reach through
// the request context.
type reqState struct {
	id    string
	class routeClass
	// clientCtx is the original request context, before the server
	// deadline was layered on — its error distinguishes "client hung
	// up" (499) from "server deadline fired" (503 + Retry-After).
	clientCtx context.Context
}

type ctxKey int

const reqStateKey ctxKey = iota

// stateFrom recovers the middleware state; nil for requests that did
// not pass through route (direct handler tests).
func stateFrom(ctx context.Context) *reqState {
	rs, _ := ctx.Value(reqStateKey).(*reqState)
	return rs
}

// reqCounter numbers requests for the X-Request-Id header. IDs are for
// log correlation only and never appear in response bodies (bodies stay
// byte-deterministic per query).
var reqCounter atomic.Uint64

// requestID returns the client-provided X-Request-Id, or mints a
// process-unique one.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" && len(id) <= 128 {
		return id
	}
	return "fa-" + strconv.FormatUint(reqCounter.Add(1), 16)
}

// route registers fn under pattern with the full middleware stack:
// latency/error instrumentation, request-ID propagation, panic
// recovery into typed 500s, the per-class deadline, and weighted
// admission control.
func (s *Server) route(pattern, name string, class routeClass, fn handlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := now()
		status := http.StatusOK
		id := requestID(r)
		w.Header().Set("X-Request-Id", id)

		defer func() {
			if v := recover(); v != nil {
				s.metrics.CountPanic()
				status = http.StatusInternalServerError
				writeError(w, status, fmt.Errorf("internal error serving %s (request %s): %v", name, id, v), 0)
			}
			s.metrics.Observe(name, time.Since(start), status >= http.StatusBadRequest)
		}()

		clientCtx := r.Context()
		ctx := clientCtx
		if class.deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, class.deadline)
			defer cancel()
		}
		rs := &reqState{id: id, class: class, clientCtx: clientCtx}
		r = r.WithContext(context.WithValue(ctx, reqStateKey, rs))

		if class.weight > 0 {
			release, err := s.limiter.Acquire(r.Context(), class.weight)
			if err != nil {
				status = s.writeMappedError(w, rs, err)
				return
			}
			defer release()
		}
		if hook := s.inject; hook != nil {
			if err := hook("serve/handler/" + name); err != nil {
				status = s.writeMappedError(w, rs, err)
				return
			}
		}
		if err := fn(w, r); err != nil {
			status = s.writeMappedError(w, rs, err)
		}
	})
}

// writeMappedError maps a handler error onto the wire — status, shed
// accounting, Retry-After — and writes the uniform error body. It
// returns the status for the metrics row.
func (s *Server) writeMappedError(w http.ResponseWriter, rs *reqState, err error) int {
	status := http.StatusInternalServerError
	var retryAfter time.Duration

	var oe *overloadError
	var he *httpError
	switch {
	case errors.As(err, &oe):
		status, retryAfter = oe.status, oe.retryAfter
		s.metrics.CountShed(oe.kind)
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if rs != nil && rs.clientCtx.Err() != nil {
			// The client went away; nobody reads the body.
			status = StatusClientClosedRequest
		} else {
			// Our own deadline fired: the request was admitted but could
			// not be served in time — shed it with a retry hint rather
			// than hanging.
			status = http.StatusServiceUnavailable
			retryAfter = time.Second
			s.metrics.CountTimeout()
		}
	}
	writeError(w, status, err, retryAfter)
	return status
}

// writeError emits the uniform api.Error body, with the Retry-After
// header and body hint on shed responses. Best-effort: the client may
// already be gone.
func writeError(w http.ResponseWriter, status int, err error, retryAfter time.Duration) {
	seconds := 0
	if retryAfter > 0 {
		seconds = int((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(seconds))
	}
	body, mErr := json.MarshalIndent(api.Error{
		Meta:        api.NewMeta(),
		Status:      status,
		Message:     err.Error(),
		RetryAfterS: seconds,
	}, "", "  ")
	if mErr != nil {
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n')) //fivealarms:allow(errflow) status and headers are already committed; a failed body write means the client hung up and there is nothing left to tell it
}

// Hardened http.Server timeouts: a stalled or slow-drip client
// (slowloris) holds a connection no longer than these bounds, and one
// oversized header block cannot balloon memory.
const (
	readHeaderTimeout = 5 * time.Second
	readTimeout       = 30 * time.Second
	writeTimeout      = 2 * time.Minute
	idleTimeout       = 2 * time.Minute
	maxHeaderBytes    = 1 << 20
)

// NewHTTPServer wraps handler in an http.Server hardened against slow
// and stalled clients: explicit read-header/read/write/idle timeouts
// and a header-size cap. Every fivealarms listener (fivealarmsd, the
// smoke harness) goes through this so slowloris defense cannot be
// forgotten at a call site.
func NewHTTPServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
		MaxHeaderBytes:    maxHeaderBytes,
	}
}
