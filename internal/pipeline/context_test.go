package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// countGoroutines samples the goroutine count once the runtime settles.
func countGoroutines() int {
	time.Sleep(time.Millisecond)
	return runtime.NumGoroutine()
}

// assertNoGoroutineLeak fails the test if the goroutine count has not
// returned to the baseline within two seconds (executor workers and the
// context watcher must all exit with the run).
func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, serial := range []bool{false, true} {
		var ran atomic.Int32
		g := New(4)
		g.Add("a", func() error { ran.Add(1); return nil })
		g.Add("b", func() error { ran.Add(1); return nil }, "a")
		var err error
		if serial {
			err = g.RunSerialContext(ctx)
		} else {
			err = g.RunContext(ctx)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("serial=%v: err = %v, want context.Canceled in chain", serial, err)
		}
		if ran.Load() != 0 {
			t.Errorf("serial=%v: %d tasks ran under a pre-cancelled context", serial, ran.Load())
		}
		if !strings.Contains(err.Error(), "0 of 2") {
			t.Errorf("serial=%v: error lacks progress info: %v", serial, err)
		}
	}
}

func TestRunContextCancelMidFlight(t *testing.T) {
	// Cancel while the first task is in flight: the in-flight task
	// drains, no dependent is scheduled, ctx.Err() is in the chain, and
	// the run returns within one task granularity.
	before := countGoroutines()
	ctx, cancel := context.WithCancel(context.Background())
	var afterRan atomic.Bool
	g := New(4)
	g.Add("slow", func() error {
		cancel()
		<-ctx.Done() // the task itself survives cancellation; it drains
		return nil
	})
	g.Add("after", func() error { afterRan.Store(true); return nil }, "slow")
	start := time.Now()
	err := g.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if afterRan.Load() {
		t.Error("dependent scheduled after cancellation")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("run took %v after cancellation", d)
	}
	assertNoGoroutineLeak(t, before)
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	g := New(2)
	g.Add("sleepy", func() error {
		<-ctx.Done()
		return nil
	})
	g.Add("next", func() error { return nil }, "sleepy")
	err := g.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded in chain", err)
	}
}

func TestRunContextCompletionBeatsLateCancel(t *testing.T) {
	// A context that fires only after every task completed is not an
	// error: the work is done and the result is whole.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := New(2)
	g.Add("a", func() error { return nil })
	if err := g.RunContext(ctx); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestPanicContainment(t *testing.T) {
	for _, serial := range []bool{false, true} {
		before := countGoroutines()
		g := New(4)
		g.Add("fine", func() error { return nil })
		g.Add("bomb", func() error { panic("boom") })
		g.Add("downstream", func() error { t.Error("dependent of panicking task ran"); return nil }, "bomb")
		var err error
		if serial {
			err = g.RunSerialContext(context.Background())
		} else {
			err = g.Run()
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("serial=%v: err = %v, want *PanicError", serial, err)
		}
		if pe.Task != "bomb" {
			t.Errorf("serial=%v: PanicError.Task = %q", serial, pe.Task)
		}
		if pe.Value != "boom" {
			t.Errorf("serial=%v: PanicError.Value = %v", serial, pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "panic") {
			t.Errorf("serial=%v: PanicError.Stack missing", serial)
		}
		assertNoGoroutineLeak(t, before)
	}
}

func TestJoinErrorsAggregatesInDeclarationOrder(t *testing.T) {
	errA := errors.New("layer A broken")
	errC := errors.New("layer C broken")
	for _, serial := range []bool{false, true} {
		var dRan, okRan atomic.Bool
		g := New(4)
		g.JoinErrors()
		g.Add("a", func() error { return errA })
		g.Add("b", func() error { return nil })
		g.Add("c", func() error { time.Sleep(2 * time.Millisecond); return errC })
		g.Add("d", func() error { dRan.Store(true); return nil }, "a")
		g.Add("ok", func() error { okRan.Store(true); return nil }, "b")
		var err error
		if serial {
			err = g.RunSerialContext(context.Background())
		} else {
			err = g.Run()
		}
		if !errors.Is(err, errA) || !errors.Is(err, errC) {
			t.Fatalf("serial=%v: aggregate %v missing a failure", serial, err)
		}
		if dRan.Load() {
			t.Errorf("serial=%v: dependent of failed task ran", serial)
		}
		if !okRan.Load() {
			t.Errorf("serial=%v: independent task skipped after unrelated failure", serial)
		}
		// Aggregation order is declaration order, not completion order:
		// "a" must be reported before the slower-declared "c".
		msg := err.Error()
		if ia, ic := strings.Index(msg, "layer A"), strings.Index(msg, "layer C"); ia < 0 || ic < 0 || ia > ic {
			t.Errorf("serial=%v: aggregate order wrong: %q", serial, msg)
		}
	}
}

func TestJoinErrorsCollectsPanics(t *testing.T) {
	boom := errors.New("plain failure")
	g := New(4)
	g.JoinErrors()
	g.Add("fails", func() error { return boom })
	g.Add("panics", func() error { panic(42) })
	err := g.Run()
	var pe *PanicError
	if !errors.Is(err, boom) || !errors.As(err, &pe) {
		t.Fatalf("aggregate %v lost a failure mode", err)
	}
	if pe.Task != "panics" || pe.Value != 42 {
		t.Errorf("PanicError = %+v", pe)
	}
}

func TestFirstErrorModeStillWins(t *testing.T) {
	// Without JoinErrors the legacy contract holds: one error comes back
	// and not-yet-started tasks are abandoned.
	boom := errors.New("boom")
	g := New(1)
	g.Add("fail", func() error { return boom })
	g.Add("after", func() error { t.Error("ran after failure"); return nil }, "fail")
	if err := g.Run(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestCycleDetectionUnderRunContext(t *testing.T) {
	// Add cannot declare a cycle (deps must pre-exist), so splice one in
	// behind its back: the executor must report it, not deadlock.
	g := New(2)
	g.Add("a", func() error { return nil })
	g.Add("b", func() error { return nil }, "a")
	g.byName["a"].deps = []string{"b"} // a <-> b
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := g.RunContext(ctx)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want cycle report", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("cycle detection relied on the deadline")
	}
}

func TestTaskNames(t *testing.T) {
	g := New(1)
	g.Add("x", func() error { return nil })
	g.Add("y", func() error { return nil }, "x")
	names := g.TaskNames()
	if fmt.Sprint(names) != "[x y]" {
		t.Fatalf("TaskNames = %v", names)
	}
}
