package pipeline

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"fivealarms/internal/faults"
)

// chaosGraph builds the reference diamond-with-tail graph the chaos
// sweeps run against, recording which tasks completed.
func chaosGraph(hook func(string) error, completed *atomic.Int32) *Graph {
	g := New(4)
	g.SetInjectionHook(hook)
	note := func() error { completed.Add(1); return nil }
	g.Add("root", note)
	g.Add("left", note, "root")
	g.Add("right", note, "root")
	g.Add("join", note, "left", "right")
	g.Add("tail", note, "join")
	return g
}

// TestChaosPanicEveryTask injects a panic into every task, one at a
// time, in both schedules: each run must contain the panic into a
// *PanicError naming the injected task, leak no goroutines, and leave
// the process healthy enough for the next iteration.
func TestChaosPanicEveryTask(t *testing.T) {
	names := chaosGraph(nil, new(atomic.Int32)).TaskNames()
	for _, serial := range []bool{false, true} {
		for _, victim := range names {
			before := countGoroutines()
			in := faults.New(1)
			in.PanicOn(victim, nil)
			var completed atomic.Int32
			g := chaosGraph(in.Hook(), &completed)
			var err error
			if serial {
				err = g.RunSerialContext(context.Background())
			} else {
				err = g.Run()
			}
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("serial=%v victim=%s: err = %v, want *PanicError", serial, victim, err)
			}
			if pe.Task != victim {
				t.Errorf("serial=%v victim=%s: PanicError.Task = %q", serial, victim, pe.Task)
			}
			ev := in.Events()
			if len(ev) != 1 || ev[0] != (faults.Event{Task: victim, Kind: faults.KindPanic}) {
				t.Errorf("serial=%v victim=%s: events = %v", serial, victim, ev)
			}
			assertNoGoroutineLeak(t, before)
		}
	}
}

// TestChaosErrorEveryTask is the error-injection sweep: every failure
// surfaces wrapped with its task name and downstream tasks are skipped.
func TestChaosErrorEveryTask(t *testing.T) {
	names := chaosGraph(nil, new(atomic.Int32)).TaskNames()
	for _, victim := range names {
		in := faults.New(1)
		in.ErrorOn(victim, nil)
		var completed atomic.Int32
		g := chaosGraph(in.Hook(), &completed)
		err := g.Run()
		if !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("victim=%s: err = %v", victim, err)
		}
		if int(completed.Load()) >= len(names) {
			t.Errorf("victim=%s: all tasks completed despite injection", victim)
		}
	}
}

// TestChaosSeededRatesDeterministic asserts the rate-based plan is a
// pure function of the seed: two runs with the same seed fire identical
// fault sets regardless of scheduling, and injection off means zero
// events.
func TestChaosSeededRatesDeterministic(t *testing.T) {
	fired := func(seed uint64) map[faults.Event]bool {
		in := faults.New(seed)
		in.ErrorRate(0.5)
		var completed atomic.Int32
		g := chaosGraph(in.Hook(), &completed)
		g.JoinErrors()
		_ = g.Run()
		set := map[faults.Event]bool{}
		for _, e := range in.Events() {
			set[e] = true
		}
		return set
	}
	a, b := fired(42), fired(42)
	if len(a) == 0 {
		t.Fatal("seed 42 at rate 0.5 injected nothing into 5 tasks")
	}
	for e := range a {
		if !b[e] {
			t.Fatalf("seed 42 runs disagree: %v vs %v", a, b)
		}
	}
	if len(a) != len(b) {
		t.Fatalf("seed 42 runs disagree: %v vs %v", a, b)
	}

	// No injector installed: the same graph runs clean.
	var completed atomic.Int32
	if err := chaosGraph(nil, &completed).Run(); err != nil || completed.Load() != 5 {
		t.Fatalf("clean run: err=%v completed=%d", err, completed.Load())
	}
}

// TestChaosDelaysDoNotChangeResults injects seed-keyed delays into every
// task and asserts pure scheduling jitter: same completions, no error.
func TestChaosDelaysDoNotChangeResults(t *testing.T) {
	in := faults.New(7)
	in.MaxDelay(2 * time.Millisecond)
	var completed atomic.Int32
	g := chaosGraph(in.Hook(), &completed)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if completed.Load() != 5 {
		t.Fatalf("completed %d of 5", completed.Load())
	}
}
