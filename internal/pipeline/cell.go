package pipeline

import "sync"

// Cell is a concurrency-safe memoization cell: the first Get computes
// the value, every later Get returns it, and concurrent callers during
// the first computation block until it finishes (singleflight — the
// build function runs exactly once no matter how many goroutines race).
//
// The zero value is ready to use. A Cell must not be copied after first
// use. The builder passed to the winning Get is the one that runs; by
// convention callers pass the same pure builder at every call site.
type Cell[T any] struct {
	once sync.Once
	val  T
	err  error
}

// Get returns the memoized value, computing it with build on first use.
func (c *Cell[T]) Get(build func() T) T {
	c.once.Do(func() { c.val = build() })
	return c.val
}

// GetErr is Get for fallible builders. The outcome — value or error —
// is memoized either way; a failed build is not retried.
func (c *Cell[T]) GetErr(build func() (T, error)) (T, error) {
	c.once.Do(func() { c.val, c.err = build() })
	return c.val, c.err
}

// Keyed is a map of memoization cells: one Cell per key, created on
// demand. Distinct keys compute concurrently; callers racing on the
// same key share one computation. The zero value is ready to use.
type Keyed[K comparable, T any] struct {
	mu sync.Mutex
	m  map[K]*Cell[T]
}

// cell returns the (lazily created) cell for key.
func (k *Keyed[K, T]) cell(key K) *Cell[T] {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.m == nil {
		k.m = map[K]*Cell[T]{}
	}
	c, ok := k.m[key]
	if !ok {
		c = &Cell[T]{}
		k.m[key] = c
	}
	return c
}

// Get returns the memoized value for key, computing it with build on
// the key's first use. The builder runs outside the map lock, so slow
// builds on different keys proceed in parallel.
func (k *Keyed[K, T]) Get(key K, build func() T) T {
	return k.cell(key).Get(build)
}

// Len reports how many keys have been touched (for tests and stats).
func (k *Keyed[K, T]) Len() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.m)
}
