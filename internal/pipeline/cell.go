package pipeline

import "sync"

// flight is one in-progress computation of a Cell value. Waiters block
// on ch and then read the outcome fields, which are written exactly once
// before ch closes.
type flight[T any] struct {
	ch       chan struct{}
	val      T
	err      error
	panicked bool
	panicVal any
}

// Cell is a concurrency-safe memoization cell: the first Get computes
// the value, every later Get returns it, and concurrent callers during
// the first computation block until it finishes (singleflight — the
// build function runs exactly once no matter how many goroutines race).
//
// Failures do not poison the cell. If the builder returns an error or
// panics, every caller sharing that flight observes the same outcome
// (the error, or a rethrow of the panic value), and the cell re-arms so
// the next caller retries with a fresh flight. Only a successful build
// is memoized.
//
// The zero value is ready to use. A Cell must not be copied after first
// use. The builder passed to the winning Get is the one that runs; by
// convention callers pass the same pure builder at every call site.
type Cell[T any] struct {
	mu     sync.Mutex
	done   bool // a build succeeded; val is permanent
	val    T
	flight *flight[T] // in-progress build, nil when idle
}

// Get returns the memoized value, computing it with build on first use.
// A panicking builder re-arms the cell (see GetErr).
func (c *Cell[T]) Get(build func() T) T {
	v, _ := c.GetErr(func() (T, error) { return build(), nil }) //fivealarms:allow(errflow) the wrapped builder returns a nil error by construction
	return v
}

// GetErr is Get for fallible builders. A successful value is memoized
// forever; an error (or panic) is shared with every caller concurrent
// with the failing flight and then discarded, so the next caller
// retries.
func (c *Cell[T]) GetErr(build func() (T, error)) (T, error) {
	c.mu.Lock()
	if c.done {
		v := c.val
		c.mu.Unlock()
		return v, nil
	}
	if f := c.flight; f != nil {
		// Someone else is building: share their one outcome.
		c.mu.Unlock()
		<-f.ch
		if f.panicked {
			panic(f.panicVal)
		}
		return f.val, f.err
	}
	f := &flight[T]{ch: make(chan struct{})}
	c.flight = f
	c.mu.Unlock()

	// Run the builder outside the lock so waiters can enqueue. The
	// deferred settle publishes the outcome — success memoizes, failure
	// or panic re-arms — and releases the waiters exactly once.
	completed := false
	defer func() {
		if !completed {
			f.panicked = true
			f.panicVal = recover()
		}
		c.mu.Lock()
		if completed && f.err == nil {
			c.val = f.val
			c.done = true
		}
		c.flight = nil
		c.mu.Unlock()
		close(f.ch)
		if f.panicked {
			panic(f.panicVal)
		}
	}()
	f.val, f.err = build()
	completed = true
	return f.val, f.err
}

// Keyed is a map of memoization cells: one Cell per key, created on
// demand. Distinct keys compute concurrently; callers racing on the
// same key share one computation. Like Cell, a failed or panicking
// build re-arms its key instead of poisoning it. The zero value is
// ready to use.
type Keyed[K comparable, T any] struct {
	mu sync.Mutex
	m  map[K]*Cell[T]
}

// cell returns the (lazily created) cell for key.
func (k *Keyed[K, T]) cell(key K) *Cell[T] {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.m == nil {
		k.m = map[K]*Cell[T]{}
	}
	c, ok := k.m[key]
	if !ok {
		c = &Cell[T]{}
		k.m[key] = c
	}
	return c
}

// Get returns the memoized value for key, computing it with build on
// the key's first use. The builder runs outside the map lock, so slow
// builds on different keys proceed in parallel.
func (k *Keyed[K, T]) Get(key K, build func() T) T {
	return k.cell(key).Get(build)
}

// GetErr is Get for fallible builders, with Cell.GetErr's retry
// semantics per key.
func (k *Keyed[K, T]) GetErr(key K, build func() (T, error)) (T, error) {
	return k.cell(key).GetErr(build)
}

// Len reports how many keys have been touched (for tests and stats).
func (k *Keyed[K, T]) Len() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.m)
}
