// Package pipeline provides the small concurrency toolkit behind the
// public Study: a dependency-graph executor that fans independent build
// steps out across bounded workers, and memoization cells (Cell, Keyed)
// that compute a derived product exactly once and share it between
// concurrent callers (singleflight semantics).
//
// The executor is deliberately tiny: tasks are named, depend on other
// tasks by name, and run as soon as every dependency has finished.
// Determinism is the caller's contract — tasks must not communicate
// except through their declared dependency edges, so the schedule
// (parallel or serial) cannot change any task's result.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"
)

// task is one node of the dependency graph.
type task struct {
	name string
	deps []string
	fn   func() error
}

// Graph is a build-once dependency graph. Declare tasks with Add, then
// execute with Run (bounded parallel) or RunSerial (deterministic
// declaration order). A Graph is not safe for concurrent declaration and
// is consumed by a single Run/RunSerial call.
type Graph struct {
	workers int
	tasks   []*task
	byName  map[string]*task
}

// New returns a graph that runs at most workers tasks concurrently.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Graph {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Graph{workers: workers, byName: map[string]*task{}}
}

// Add declares a task. Every name in deps must already be declared —
// declaration order is a valid serial schedule by construction, which is
// what RunSerial executes. Add panics on a duplicate name or an unknown
// dependency; both are programming errors in the graph definition.
func (g *Graph) Add(name string, fn func() error, deps ...string) {
	if _, dup := g.byName[name]; dup {
		panic(fmt.Sprintf("pipeline: duplicate task %q", name))
	}
	for _, d := range deps {
		if _, ok := g.byName[d]; !ok {
			panic(fmt.Sprintf("pipeline: task %q depends on undeclared %q", name, d))
		}
	}
	t := &task{name: name, deps: deps, fn: fn}
	g.tasks = append(g.tasks, t)
	g.byName[name] = t
}

// Run executes the graph with bounded workers. Each task starts once all
// of its dependencies have succeeded. The first task error cancels the
// remaining not-yet-started tasks and is returned after every in-flight
// task has finished, so partially built state is never abandoned
// mid-write.
func (g *Graph) Run() error {
	n := len(g.tasks)
	if n == 0 {
		return nil
	}

	// Indegree per task and forward edges dep -> dependents.
	indeg := make(map[string]int, n)
	dependents := make(map[string][]*task, n)
	for _, t := range g.tasks {
		indeg[t.name] = len(t.deps)
		for _, d := range t.deps {
			dependents[d] = append(dependents[d], t)
		}
	}

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		ready    []*task
		running  int
		done     int
		firstErr error
	)
	for _, t := range g.tasks {
		if indeg[t.name] == 0 {
			ready = append(ready, t)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < g.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			for {
				for len(ready) == 0 && running > 0 && firstErr == nil {
					cond.Wait()
				}
				if len(ready) == 0 || firstErr != nil {
					// Drained, failed, or (on a cycle) stalled with
					// nothing runnable: wake the others and exit.
					cond.Broadcast()
					mu.Unlock()
					return
				}
				t := ready[len(ready)-1]
				ready = ready[:len(ready)-1]
				running++
				mu.Unlock()

				err := t.fn()

				mu.Lock()
				running--
				done++
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("pipeline: task %q: %w", t.name, err)
				}
				if firstErr == nil {
					for _, dep := range dependents[t.name] {
						indeg[dep.name]--
						if indeg[dep.name] == 0 {
							ready = append(ready, dep)
						}
					}
				}
				cond.Broadcast()
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	if done != n {
		return fmt.Errorf("pipeline: dependency cycle: %d of %d tasks ran", done, n)
	}
	return nil
}

// RunSerial executes every task one at a time in declaration order (a
// valid topological order by Add's contract). It is the debugging escape
// hatch: identical results to Run, no goroutines involved.
func (g *Graph) RunSerial() error {
	for _, t := range g.tasks {
		if err := t.fn(); err != nil {
			return fmt.Errorf("pipeline: task %q: %w", t.name, err)
		}
	}
	return nil
}
