// Package pipeline provides the small concurrency toolkit behind the
// public Study: a dependency-graph executor that fans independent build
// steps out across bounded workers, and memoization cells (Cell, Keyed)
// that compute a derived product exactly once and share it between
// concurrent callers (singleflight semantics).
//
// The executor is deliberately tiny: tasks are named, depend on other
// tasks by name, and run as soon as every dependency has finished.
// Determinism is the caller's contract — tasks must not communicate
// except through their declared dependency edges, so the schedule
// (parallel or serial) cannot change any task's result.
//
// # Failure model
//
// The executor contains faults instead of amplifying them:
//
//   - A panicking task is recovered into a *PanicError carrying the task
//     name, the panic value and the goroutine stack; sibling workers are
//     woken and drain cleanly, and no goroutine outlives the run.
//   - RunContext and RunSerialContext honor cancellation: a cancelled
//     context stops new tasks from being scheduled, in-flight tasks are
//     drained, and the returned error wraps ctx.Err() together with how
//     far the run got.
//   - By default the first task error wins and stops scheduling. With
//     JoinErrors, every independent failure is collected and returned as
//     one errors.Join aggregate in declaration order, so operators see
//     each broken layer rather than the race winner. Tasks downstream of
//     a failed dependency are skipped either way.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
)

// PanicError is a panic recovered from a task. It is returned (wrapped
// in the run's error) instead of crashing the process; errors.As
// retrieves it from any executor error chain.
type PanicError struct {
	Task  string // the task whose function (or injection hook) panicked
	Value any    // the value passed to panic
	Stack []byte // the panicking goroutine's stack at recovery time
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pipeline: task %q panicked: %v", e.Task, e.Value)
}

// task is one node of the dependency graph.
type task struct {
	name  string
	order int // declaration index; fixes error-aggregation order
	deps  []string
	fn    func() error
}

// Graph is a build-once dependency graph. Declare tasks with Add, then
// execute with Run/RunContext (bounded parallel) or
// RunSerial/RunSerialContext (deterministic declaration order). A Graph
// is not safe for concurrent declaration and is consumed by a single run
// call.
type Graph struct {
	workers int
	tasks   []*task
	byName  map[string]*task
	joinAll bool
	inject  func(task string) error
}

// New returns a graph that runs at most workers tasks concurrently.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Graph {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Graph{workers: workers, byName: map[string]*task{}}
}

// Add declares a task. Every name in deps must already be declared —
// declaration order is a valid serial schedule by construction, which is
// what RunSerial executes. Add panics on a duplicate name or an unknown
// dependency; both are programming errors in the graph definition.
func (g *Graph) Add(name string, fn func() error, deps ...string) {
	if _, dup := g.byName[name]; dup {
		panic(fmt.Sprintf("pipeline: duplicate task %q", name))
	}
	for _, d := range deps {
		if _, ok := g.byName[d]; !ok {
			panic(fmt.Sprintf("pipeline: task %q depends on undeclared %q", name, d))
		}
	}
	t := &task{name: name, order: len(g.tasks), deps: deps, fn: fn}
	g.tasks = append(g.tasks, t)
	g.byName[name] = t
}

// TaskNames returns the declared task names in declaration order (a
// valid serial schedule). Chaos harnesses use it to enumerate injection
// targets.
func (g *Graph) TaskNames() []string {
	out := make([]string, len(g.tasks))
	for i, t := range g.tasks {
		out[i] = t.name
	}
	return out
}

// JoinErrors switches the graph from first-error-wins to aggregation:
// every independent task failure is collected and the run returns one
// errors.Join of all of them, ordered by task declaration. Scheduling
// continues past failures for tasks whose dependencies all succeeded.
func (g *Graph) JoinErrors() { g.joinAll = true }

// SetInjectionHook installs a chaos hook that runs immediately before
// every task function, receiving the task name. A hook may sleep (delay
// injection), return a non-nil error (failure injection), or panic
// (crash injection — contained into a *PanicError exactly like a panic
// in the task itself). The hook exists for deterministic fault-injection
// tests (see internal/faults) and must stay nil in production paths.
func (g *Graph) SetInjectionHook(hook func(task string) error) { g.inject = hook }

// runTask executes one task with the injection hook applied and any
// panic contained into a *PanicError.
func (g *Graph) runTask(t *task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Task: t.name, Value: r, Stack: debug.Stack()}
		}
	}()
	if g.inject != nil {
		if err := g.inject(t.name); err != nil {
			return err
		}
	}
	return t.fn()
}

// taskError pairs a failure with its task's declaration index so
// aggregated errors report in a deterministic order regardless of which
// worker lost the race.
type taskError struct {
	order int
	err   error
}

// wrapTaskErr names the failing task unless the error already does
// (PanicError carries its task).
func wrapTaskErr(t *task, err error) taskError {
	var pe *PanicError
	if !errors.As(err, &pe) {
		err = fmt.Errorf("pipeline: task %q: %w", t.name, err)
	}
	return taskError{order: t.order, err: err}
}

// finish reduces a run's collected failures to the returned error.
// done==n with no failures is success even if ctx expired at the last
// instant; otherwise a non-nil ctxErr is appended so cancellation is
// always visible in the chain alongside any task errors.
func finish(errs []taskError, ctxErr error, done, n int) error {
	if len(errs) == 0 && done == n {
		return nil
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].order < errs[j].order })
	flat := make([]error, 0, len(errs)+1)
	for _, te := range errs {
		flat = append(flat, te.err)
	}
	if ctxErr != nil {
		flat = append(flat, fmt.Errorf("pipeline: cancelled after %d of %d tasks: %w", done, n, ctxErr))
	}
	switch len(flat) {
	case 0:
		return fmt.Errorf("pipeline: dependency cycle: %d of %d tasks ran", done, n)
	case 1:
		return flat[0]
	}
	return errors.Join(flat...)
}

// Run executes the graph with bounded workers and no cancellation. Each
// task starts once all of its dependencies have succeeded. By default
// the first task error stops scheduling and is returned after every
// in-flight task has finished, so partially built state is never
// abandoned mid-write; see JoinErrors for the aggregate mode.
func (g *Graph) Run() error { return g.RunContext(context.Background()) }

// RunContext is Run under a context. Cancellation (or a deadline) stops
// new tasks from being scheduled — the run returns within one task
// granularity, after draining the tasks already in flight — and the
// returned error wraps ctx.Err() with the completed/total progress.
func (g *Graph) RunContext(ctx context.Context) error {
	n := len(g.tasks)
	if n == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return finish(nil, err, 0, n)
	}

	// Indegree per task and forward edges dep -> dependents.
	indeg := make(map[string]int, n)
	dependents := make(map[string][]*task, n)
	for _, t := range g.tasks {
		indeg[t.name] = len(t.deps)
		for _, d := range t.deps {
			dependents[d] = append(dependents[d], t)
		}
	}

	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		ready     []*task
		running   int
		done      int
		errs      []taskError
		cancelled bool
	)
	// stopped reports (with mu held) whether workers must stop picking up
	// new tasks: the context fired, or a failure occurred in
	// first-error-wins mode. In JoinErrors mode failures do not stop
	// scheduling — unreachable dependents simply never become ready.
	// The direct ctx.Err() check makes cancellation synchronous with the
	// caller's cancel(): no task is picked up after cancel returns, even
	// if the watcher goroutine has not been scheduled yet.
	stopped := func() bool {
		if cancelled || (len(errs) > 0 && !g.joinAll) {
			return true
		}
		if ctx.Err() != nil {
			cancelled = true
			return true
		}
		return false
	}
	for _, t := range g.tasks {
		if indeg[t.name] == 0 {
			ready = append(ready, t)
		}
	}

	// The watcher turns ctx cancellation into a cond broadcast so blocked
	// workers wake promptly; it exits with the run (no goroutine leak).
	watchDone := make(chan struct{})
	var watchWG sync.WaitGroup
	if ctx.Done() != nil {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			select {
			case <-ctx.Done():
				mu.Lock()
				cancelled = true
				cond.Broadcast()
				mu.Unlock()
			case <-watchDone:
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < g.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			for {
				for len(ready) == 0 && running > 0 && !stopped() {
					cond.Wait()
				}
				if len(ready) == 0 || stopped() {
					// Drained, failed, cancelled, or (on a cycle) stalled
					// with nothing runnable: wake the others and exit.
					cond.Broadcast()
					mu.Unlock()
					return
				}
				t := ready[len(ready)-1]
				ready = ready[:len(ready)-1]
				running++
				mu.Unlock()

				err := g.runTask(t)

				mu.Lock()
				running--
				done++
				if err != nil {
					errs = append(errs, wrapTaskErr(t, err))
				} else {
					for _, dep := range dependents[t.name] {
						indeg[dep.name]--
						if indeg[dep.name] == 0 {
							ready = append(ready, dep)
						}
					}
				}
				cond.Broadcast()
			}
		}()
	}
	wg.Wait()
	close(watchDone)
	watchWG.Wait()

	// All workers and the watcher have exited; state is quiescent.
	var ctxErr error
	if cancelled || ctx.Err() != nil {
		ctxErr = ctx.Err()
	}
	return finish(errs, ctxErr, done, n)
}

// RunSerial executes every task one at a time in declaration order (a
// valid topological order by Add's contract). It is the debugging escape
// hatch: identical results to Run, no goroutines involved. Panics are
// contained and the injection hook applies exactly as in Run.
func (g *Graph) RunSerial() error { return g.RunSerialContext(context.Background()) }

// RunSerialContext is RunSerial under a context, checked between tasks.
func (g *Graph) RunSerialContext(ctx context.Context) error {
	n := len(g.tasks)
	var (
		errs   []taskError
		done   int
		failed map[string]bool // tasks that failed or were skipped
	)
	for _, t := range g.tasks {
		if err := ctx.Err(); err != nil {
			return finish(errs, err, done, n)
		}
		blocked := false
		for _, d := range t.deps {
			if failed[d] {
				blocked = true
				break
			}
		}
		if blocked {
			failed[t.name] = true
			continue
		}
		if err := g.runTask(t); err != nil {
			errs = append(errs, wrapTaskErr(t, err))
			if !g.joinAll {
				return finish(errs, nil, done, n)
			}
			if failed == nil {
				failed = map[string]bool{}
			}
			failed[t.name] = true
			continue
		}
		done++
	}
	return finish(errs, nil, done, n)
}
