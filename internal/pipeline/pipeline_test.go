package pipeline

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGraphRunsAllTasksOnce(t *testing.T) {
	for _, serial := range []bool{false, true} {
		var counts [5]int32
		g := New(3)
		g.Add("a", func() error { atomic.AddInt32(&counts[0], 1); return nil })
		g.Add("b", func() error { atomic.AddInt32(&counts[1], 1); return nil }, "a")
		g.Add("c", func() error { atomic.AddInt32(&counts[2], 1); return nil }, "a")
		g.Add("d", func() error { atomic.AddInt32(&counts[3], 1); return nil }, "b", "c")
		g.Add("e", func() error { atomic.AddInt32(&counts[4], 1); return nil })
		var err error
		if serial {
			err = g.RunSerial()
		} else {
			err = g.Run()
		}
		if err != nil {
			t.Fatalf("serial=%v: %v", serial, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Errorf("serial=%v: task %d ran %d times", serial, i, c)
			}
		}
	}
}

func TestGraphRespectsDependencies(t *testing.T) {
	// The dependency edge must be a happens-before edge: "child" observes
	// the parent's write without any synchronization of its own.
	for trial := 0; trial < 50; trial++ {
		var parentDone bool
		var observed bool
		g := New(8)
		g.Add("parent", func() error { parentDone = true; return nil })
		g.Add("child", func() error { observed = parentDone; return nil }, "parent")
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		if !observed {
			t.Fatal("child ran before parent finished")
		}
	}
}

func TestGraphPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	ran := false
	g := New(2)
	g.Add("fail", func() error { return boom })
	g.Add("after", func() error { ran = true; return nil }, "fail")
	err := g.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Error("dependent of failed task ran")
	}
}

func TestGraphPanicsOnBadDeclarations(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() {
		g := New(1)
		g.Add("a", func() error { return nil })
		g.Add("a", func() error { return nil })
	})
	mustPanic("unknown dep", func() {
		g := New(1)
		g.Add("a", func() error { return nil }, "ghost")
	})
}

func TestGraphBoundsWorkers(t *testing.T) {
	const workers = 2
	var cur, max int32
	g := New(workers)
	for i := 0; i < 10; i++ {
		g.Add(string(rune('a'+i)), func() error {
			n := atomic.AddInt32(&cur, 1)
			for {
				m := atomic.LoadInt32(&max)
				if n <= m || atomic.CompareAndSwapInt32(&max, m, n) {
					break
				}
			}
			atomic.AddInt32(&cur, -1)
			return nil
		})
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if max > workers {
		t.Errorf("observed %d concurrent tasks, worker bound %d", max, workers)
	}
}

func TestCellSingleflight(t *testing.T) {
	var c Cell[int]
	var builds int32
	var wg sync.WaitGroup
	results := make([]int, 32)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Get(func() int {
				atomic.AddInt32(&builds, 1)
				return 41 + 1
			})
		}(i)
	}
	wg.Wait()
	if builds != 1 {
		t.Errorf("builder ran %d times", builds)
	}
	for i, r := range results {
		if r != 42 {
			t.Errorf("caller %d got %d", i, r)
		}
	}
}

func TestCellGetErrRetriesAfterFailure(t *testing.T) {
	// Poison regression: a failed build must re-arm the cell (retry on
	// the next call), and only a successful build may memoize.
	var c Cell[string]
	boom := errors.New("boom")
	builds := 0
	for i := 0; i < 2; i++ {
		_, err := c.GetErr(func() (string, error) { builds++; return "", boom })
		if !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if builds != 2 {
		t.Fatalf("failed builder ran %d times, want a retry per call", builds)
	}
	v, err := c.GetErr(func() (string, error) { builds++; return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("recovery build: %q, %v", v, err)
	}
	// Success memoizes: later builders must not run.
	v, err = c.GetErr(func() (string, error) { builds++; return "", boom })
	if err != nil || v != "ok" {
		t.Fatalf("after success: %q, %v", v, err)
	}
	if builds != 3 {
		t.Errorf("builder ran %d times, want 3", builds)
	}
}

func TestCellConcurrentFailureSharedThenRetried(t *testing.T) {
	// Callers racing on a failing flight share its one outcome
	// (singleflight preserved); the cell then re-arms so a later wave
	// succeeds. Run many waves under -race to stress the state machine.
	var c Cell[int]
	var builds, failures atomic.Int32
	var healed atomic.Bool
	build := func() (int, error) {
		builds.Add(1)
		time.Sleep(time.Millisecond) // widen the sharing window
		if !healed.Load() {
			return 0, errors.New("not yet")
		}
		return 7, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, err := c.GetErr(build)
				if err != nil {
					failures.Add(1)
					continue
				}
				if v != 7 {
					t.Errorf("got %d", v)
				}
				return
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	healed.Store(true)
	wg.Wait()
	if failures.Load() == 0 {
		t.Error("no caller observed the failing flight")
	}
	if b := builds.Load(); int(b) > int(failures.Load())+1 {
		// Singleflight bound: every build except the successful one must
		// have produced at least one shared failure observation.
		t.Errorf("%d builds for %d observed failures", b, failures.Load())
	}
	// The memoized value survives with no further builds.
	before := builds.Load()
	if v, err := c.GetErr(build); err != nil || v != 7 {
		t.Fatalf("warm read: %d, %v", v, err)
	}
	if builds.Load() != before {
		t.Error("warm read re-ran the builder")
	}
}

func TestCellPanicRearmsAndPropagates(t *testing.T) {
	var c Cell[int]
	mustPanic := func() (v any) {
		defer func() { v = recover() }()
		c.Get(func() int { panic("kaboom") })
		return nil
	}
	if got := mustPanic(); got != "kaboom" {
		t.Fatalf("winner recovered %v", got)
	}
	// The panic must not poison the cell: the next build succeeds.
	if v := c.Get(func() int { return 11 }); v != 11 {
		t.Fatalf("post-panic build got %d", v)
	}
}

func TestKeyedGetErrRetriesPerKey(t *testing.T) {
	var k Keyed[string, int]
	boom := errors.New("boom")
	if _, err := k.GetErr("a", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, err := k.GetErr("a", func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("retry: %d, %v", v, err)
	}
	if k.Len() != 1 {
		t.Errorf("Len = %d", k.Len())
	}
}

func TestKeyedPerKeySingleflight(t *testing.T) {
	var k Keyed[int, int]
	var builds int32
	var wg sync.WaitGroup
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := g % 3
			got := k.Get(key, func() int {
				atomic.AddInt32(&builds, 1)
				return key * 10
			})
			if got != key*10 {
				t.Errorf("key %d: got %d", key, got)
			}
		}(g)
	}
	wg.Wait()
	if builds != 3 {
		t.Errorf("builders ran %d times for 3 keys", builds)
	}
	if k.Len() != 3 {
		t.Errorf("Len = %d", k.Len())
	}
}
