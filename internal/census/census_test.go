package census

import (
	"testing"

	"fivealarms/internal/conus"
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
)

var (
	testWorld    = conus.Build(conus.Config{Seed: 7, CellSizeM: 20000})
	testCounties = Synthesize(testWorld, 7)
)

func TestClassify(t *testing.T) {
	tests := []struct {
		pop  int
		want DensityClass
	}{
		{100, PopRural},
		{200000, PopRural},
		{200001, PopModerate},
		{500000, PopModerate},
		{500001, PopDense},
		{1500000, PopDense},
		{1500001, PopVeryDense},
		{10000000, PopVeryDense},
	}
	for _, tc := range tests {
		if got := Classify(tc.pop); got != tc.want {
			t.Errorf("Classify(%d) = %v, want %v", tc.pop, got, tc.want)
		}
	}
}

func TestDensityClassString(t *testing.T) {
	if PopVeryDense.String() != "very-dense" || PopRural.String() != "rural" {
		t.Error("String values wrong")
	}
	if DensityClass(99).String() != "invalid" {
		t.Error("invalid class string")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(testWorld, 7)
	b := Synthesize(testWorld, 7)
	if len(a.All) != len(b.All) {
		t.Fatal("county counts differ")
	}
	for i := range a.All {
		if a.All[i] != b.All[i] {
			t.Fatalf("county %d differs between identical syntheses", i)
		}
	}
}

func TestEveryStateHasCounties(t *testing.T) {
	for si, st := range geodata.States {
		got := testCounties.OfState(si)
		if len(got) == 0 {
			t.Errorf("state %s has no counties", st.Abbrev)
		}
	}
	if testCounties.OfState(-1) != nil || testCounties.OfState(999) != nil {
		t.Error("out-of-range state should return nil")
	}
}

func TestAnchorsPinned(t *testing.T) {
	// Every big county must appear with its real population.
	found := map[string]bool{}
	for _, c := range testCounties.All {
		if c.Anchor {
			found[c.Name+"/"+geodata.States[c.StateIdx].Abbrev] = true
		}
	}
	for _, bc := range geodata.BigCounties {
		if !found[bc.Name+"/"+bc.State] {
			t.Errorf("anchor county %s (%s) missing", bc.Name, bc.State)
		}
	}
}

func TestVeryDenseMatchesPaperScale(t *testing.T) {
	vd := testCounties.VeryDense()
	// The paper identifies 23 counties above 1.5M; our anchors give 20+.
	if len(vd) < 20 || len(vd) > 30 {
		t.Errorf("very-dense counties = %d, want ~23", len(vd))
	}
	for _, ci := range vd {
		if testCounties.All[ci].Pop <= 1500000 {
			t.Error("very-dense county below the threshold")
		}
	}
}

func TestPopulationConservedPerState(t *testing.T) {
	for si, st := range geodata.States {
		var sum int
		for _, ci := range testCounties.OfState(si) {
			sum += testCounties.All[ci].Pop
		}
		// Anchors may overrun tiny states in synthetic worlds, and Zipf
		// rounding truncates; require within 10% or exact anchor overage.
		lo := int(float64(st.Pop) * 0.85)
		hi := int(float64(st.Pop)*1.15) + 1
		if sum < lo || sum > hi {
			t.Errorf("state %s population = %d, want ~%d", st.Abbrev, sum, st.Pop)
		}
	}
}

func TestCountyAtLA(t *testing.T) {
	p := testWorld.ToXY(geom.Point{X: -118.2437, Y: 34.0522})
	ci := testCounties.CountyAt(p)
	if ci < 0 {
		t.Fatal("LA should be in a county")
	}
	c := testCounties.All[ci]
	if c.Name != "Los Angeles" {
		t.Errorf("county at LA = %s", c.Name)
	}
	if c.Density() != PopVeryDense {
		t.Errorf("LA county density = %v", c.Density())
	}
}

func TestCountyAtOcean(t *testing.T) {
	p := testWorld.ToXY(geom.Point{X: -130, Y: 40})
	if ci := testCounties.CountyAt(p); ci != -1 {
		t.Errorf("ocean county = %d, want -1", ci)
	}
}

func TestCountyAtRespectsStateBorders(t *testing.T) {
	// A point in Nevada must never resolve to a California county even if
	// a CA seed is closer.
	p := testWorld.ToXY(geom.Point{X: -114.8, Y: 36.0}) // near Vegas
	ci := testCounties.CountyAt(p)
	if ci < 0 {
		t.Fatal("point should be inside CONUS")
	}
	if ab := geodata.States[testCounties.All[ci].StateIdx].Abbrev; ab != "NV" && ab != "AZ" {
		t.Errorf("county state = %s, want NV or AZ", ab)
	}
}

func TestTotalPopulation(t *testing.T) {
	got := testCounties.TotalPopulation()
	want := geodata.TotalPopulation()
	if got < int(float64(want)*0.9) || got > int(float64(want)*1.1) {
		t.Errorf("total population = %d, want ~%d", got, want)
	}
}

func TestCountyOrdinalNames(t *testing.T) {
	if countyOrdinal(0) != "A" || countyOrdinal(25) != "Z" || countyOrdinal(26) != "AA" {
		t.Errorf("ordinals: %s %s %s", countyOrdinal(0), countyOrdinal(25), countyOrdinal(26))
	}
}

func BenchmarkCountyAt(b *testing.B) {
	p := testWorld.ToXY(geom.Point{X: -100, Y: 40})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = testCounties.CountyAt(p)
	}
}
