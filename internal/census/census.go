// Package census synthesizes the county layer of the digital CONUS: every
// state is subdivided into Voronoi county zones around seeded county
// centers, with the largest real counties (geodata.BigCounties) pinned at
// their true locations and populations. County populations drive the
// paper's §3.6 impact analysis, which classifies counties into the
// moderately-dense / dense / very-dense bands.
package census

import (
	"math"

	"fivealarms/internal/conus"
	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
	"fivealarms/internal/rng"
)

// DensityClass is the paper's county population banding.
type DensityClass int

// Density classes. Rural counties (<200k people) are outside all three of
// the paper's bands.
const (
	PopRural     DensityClass = iota // < 200k
	PopModerate                      // 200k - 500k ("Pop M")
	PopDense                         // 500k - 1.5M ("Pop H")
	PopVeryDense                     // > 1.5M ("Pop VH")
)

// String implements fmt.Stringer.
func (d DensityClass) String() string {
	switch d {
	case PopRural:
		return "rural"
	case PopModerate:
		return "moderately-dense"
	case PopDense:
		return "dense"
	case PopVeryDense:
		return "very-dense"
	default:
		return "invalid"
	}
}

// Classify returns the density class for a county population.
func Classify(pop int) DensityClass {
	switch {
	case pop > 1500000:
		return PopVeryDense
	case pop > 500000:
		return PopDense
	case pop > 200000:
		return PopModerate
	default:
		return PopRural
	}
}

// County is one synthesized county.
type County struct {
	Name     string
	StateIdx int        // index into geodata.States
	Seed     geom.Point // projected Voronoi seed
	Pop      int
	Anchor   bool // pinned from geodata.BigCounties
	// weight scales the Voronoi influence: populous counties claim more
	// territory, mirroring how real western urban counties (Los Angeles,
	// San Bernardino) reach deep into adjacent wildland.
	weight float64
}

// Density returns the county's density class.
func (c County) Density() DensityClass { return Classify(c.Pop) }

// Counties is the synthesized national county layer.
type Counties struct {
	All []County
	// byState holds indices into All per state index.
	byState [][]int
	world   *conus.World
}

// Synthesize builds the county layer for the world. Deterministic in
// (world configuration, seed).
func Synthesize(w *conus.World, seed uint64) *Counties {
	src := rng.NewStream(seed, 0xC0)
	c := &Counties{world: w, byState: make([][]int, len(geodata.States))}

	// Bucket grid cells by state for seeding random county centers.
	cellsByState := make([][]geom.Point, len(geodata.States))
	g := w.Grid
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			if v := w.StateZone.At(cx, cy); v > 0 {
				cellsByState[v-1] = append(cellsByState[v-1], g.Center(cx, cy))
			}
		}
	}

	for si, st := range geodata.States {
		var anchors []geodata.BigCounty
		for _, bc := range geodata.BigCounties {
			if bc.State == st.Abbrev {
				anchors = append(anchors, bc)
			}
		}
		n := st.Counties
		// At coarse resolutions a state zone may have few cells; keep at
		// least one county per state plus room for anchors.
		if n < len(anchors)+1 {
			n = len(anchors) + 1
		}
		countyIdx := make([]int, 0, n)

		anchorPop := 0
		for _, bc := range anchors {
			countyIdx = append(countyIdx, len(c.All))
			c.All = append(c.All, County{
				Name:     bc.Name,
				StateIdx: si,
				Seed:     w.ToXY(geom.Point{X: bc.Lon, Y: bc.Lat}),
				Pop:      bc.Pop,
				Anchor:   true,
				weight:   countyWeight(bc.Pop),
			})
			anchorPop += bc.Pop
		}

		rest := n - len(anchors)
		cells := cellsByState[si]
		if len(cells) == 0 {
			// Degenerate zone (possible for DC at very coarse grids): seed
			// at the state centroid.
			cells = []geom.Point{w.StateCentroidXY(si)}
		}
		remaining := st.Pop - anchorPop
		if remaining < 0 {
			remaining = 0
		}
		// Zipf-distributed populations over the non-anchor counties,
		// capped below the very-dense threshold: every county above 1.5M
		// is a pinned anchor, so synthetic ones must stay under it.
		pops := zipfAllocate(remaining, rest, 1400000)
		for i := 0; i < rest; i++ {
			cell := cells[src.Intn(len(cells))]
			// Jitter inside the cell so seeds do not align to the grid.
			jx := src.Range(-g.CellSize/2, g.CellSize/2)
			jy := src.Range(-g.CellSize/2, g.CellSize/2)
			countyIdx = append(countyIdx, len(c.All))
			c.All = append(c.All, County{
				Name:     syntheticCountyName(st.Abbrev, i),
				StateIdx: si,
				Seed:     geom.Point{X: cell.X + jx, Y: cell.Y + jy},
				Pop:      pops[i],
				weight:   countyWeight(pops[i]),
			})
		}
		c.byState[si] = countyIdx
	}
	return c
}

// zipfAllocate splits total across n ranks with weights 1/(rank^1.05),
// capping any rank at cap and redistributing the clipped mass over the
// uncapped ranks. Returns n values summing to at most total.
func zipfAllocate(total, n, cap int) []int {
	out := make([]int, n)
	if n == 0 || total <= 0 {
		return out
	}
	weights := make([]float64, n)
	capped := make([]bool, n)
	left := total
	for pass := 0; pass < 4 && left > 0; pass++ {
		var wSum float64
		for i := range weights {
			if capped[i] {
				weights[i] = 0
				continue
			}
			weights[i] = 1 / math.Pow(float64(i+1), 1.05)
			wSum += weights[i]
		}
		if wSum == 0 {
			break
		}
		assigned := 0
		for i := range out {
			if capped[i] {
				continue
			}
			add := int(float64(left) * weights[i] / wSum)
			out[i] += add
			assigned += add
			if out[i] >= cap {
				assigned -= out[i] - cap
				out[i] = cap
				capped[i] = true
			}
		}
		left -= assigned
		if assigned == 0 {
			break
		}
	}
	return out
}

// syntheticCountyName labels generated counties deterministically.
func syntheticCountyName(state string, i int) string {
	return state + "-" + countyOrdinal(i)
}

func countyOrdinal(i int) string {
	// Base-26 letters: A, B, ..., Z, AA, AB...
	s := ""
	i++
	for i > 0 {
		i--
		s = string(rune('A'+i%26)) + s
		i /= 26
	}
	return s
}

// CountyAt returns the index into All of the county containing the
// projected point (nearest county seed within the point's state), or -1
// outside the CONUS.
func (c *Counties) CountyAt(p geom.Point) int {
	si := c.world.StateAt(p)
	if si < 0 {
		return -1
	}
	best := -1
	bestD := math.Inf(1)
	for _, ci := range c.byState[si] {
		d := c.All[ci].Seed.DistanceTo(p) / c.All[ci].weight
		if d < bestD {
			bestD = d
			best = ci
		}
	}
	return best
}

// countyWeight computes the Voronoi influence weight from population.
func countyWeight(pop int) float64 {
	if pop < 50000 {
		pop = 50000
	}
	return math.Pow(float64(pop), 0.3)
}

// OfState returns the county indices of a state.
func (c *Counties) OfState(stateIdx int) []int {
	if stateIdx < 0 || stateIdx >= len(c.byState) {
		return nil
	}
	return c.byState[stateIdx]
}

// VeryDense returns the indices of counties in the > 1.5M band (the
// paper's 23 most populous counties).
func (c *Counties) VeryDense() []int {
	var out []int
	for i, county := range c.All {
		if county.Density() == PopVeryDense {
			out = append(out, i)
		}
	}
	return out
}

// TotalPopulation sums all county populations.
func (c *Counties) TotalPopulation() int {
	t := 0
	for _, county := range c.All {
		t += county.Pop
	}
	return t
}
