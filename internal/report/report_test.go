package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fivealarms/internal/risk"
	"fivealarms/internal/serve/api"
)

func TestTableString(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("bb", "22,000")
	s := tb.String()
	if !strings.Contains(s, "T\n=\n") {
		t.Errorf("title not rendered: %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d: %q", len(lines), s)
	}
	// Numeric cells right-align: "22,000" wider than header "value".
	if !strings.HasSuffix(lines[4], "     1") {
		t.Errorf("numeric right-alignment missing: %q", lines[4])
	}
}

func TestTableCSVAndJSON(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("x", "1")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\nx,1\n" {
		t.Errorf("CSV = %q", got)
	}
	buf.Reset()
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]string
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0]["a"] != "x" || out[0]["b"] != "1" {
		t.Errorf("JSON = %v", out)
	}
}

func TestWriteMarkdown(t *testing.T) {
	tb := &Table{Title: "Demo", Header: []string{"a", "b|c"}}
	tb.AddRow("x", "1")
	var buf bytes.Buffer
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "### Demo\n\n") {
		t.Errorf("heading missing: %q", got)
	}
	if !strings.Contains(got, "| a | b\\|c |") {
		t.Errorf("pipe escaping missing: %q", got)
	}
	if !strings.Contains(got, "| --- | --- |") {
		t.Errorf("separator missing: %q", got)
	}
	if !strings.Contains(got, "| x | 1 |") {
		t.Errorf("row missing: %q", got)
	}
}

func TestItoa(t *testing.T) {
	tests := []struct {
		n    int
		want string
	}{
		{0, "0"}, {7, "7"}, {999, "999"}, {1000, "1,000"},
		{5364949, "5,364,949"}, {-1234, "-1,234"},
	}
	for _, tc := range tests {
		if got := Itoa(tc.n); got != tc.want {
			t.Errorf("Itoa(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if F1(1.25) != "1.2" && F1(1.25) != "1.3" {
		t.Errorf("F1 = %q", F1(1.25))
	}
	if F2(3.14159) != "3.14" {
		t.Errorf("F2 = %q", F2(3.14159))
	}
	if Pct(46.2) != "46.2%" {
		t.Errorf("Pct = %q", Pct(46.2))
	}
}

func TestLooksNumeric(t *testing.T) {
	for _, s := range []string{"123", "1,234", "-5.2", "46.2%", "3.4x"} {
		if !looksNumeric(s) {
			t.Errorf("%q should look numeric", s)
		}
	}
	for _, s := range []string{"", "CA", "Oct 28", "12a"} {
		if looksNumeric(s) {
			t.Errorf("%q should not look numeric", s)
		}
	}
}

func TestBarChart(t *testing.T) {
	s := BarChart("outages", []string{"Oct 25", "Oct 26"}, []int{5, 10}, 20)
	if !strings.Contains(s, "outages") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[2], "#") != 20 {
		t.Errorf("max bar should be 20 wide: %q", lines[2])
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Errorf("half bar should be 10 wide: %q", lines[1])
	}
}

func TestBarChartZeroValues(t *testing.T) {
	s := BarChart("", []string{"a"}, []int{0}, 10)
	if strings.Contains(s, "#") {
		t.Error("zero value should have no bar")
	}
}

func TestTable1Rendering(t *testing.T) {
	// HistoricalOverlay produces oldest-first; Table1 prints newest-first.
	rows := api.Table1From([]risk.YearOverlay{
		{Year: 2017, Fires: 71499, AcresBurned: 10.026e6, TransceiversIn: 10, PerMillionAcres: 1.0},
		{Year: 2018, Fires: 58083, AcresBurned: 8.767e6, TransceiversIn: 42, PerMillionAcres: 4.8},
	})
	s := Table1(rows).String()
	if !strings.Contains(s, "2018") || !strings.Contains(s, "58,083") {
		t.Errorf("Table1 missing data: %s", s)
	}
	// Paper comparison column present (2018 paper value 3,099).
	if !strings.Contains(s, "3,099") {
		t.Errorf("Table1 missing paper reference: %s", s)
	}
	// Newest year first.
	if strings.Index(s, "2018") > strings.Index(s, "2017") {
		t.Error("years not newest-first")
	}
}

func TestValidationRendering(t *testing.T) {
	v := api.ValidationFrom(&risk.ValidationResult{InPerimeter: 100, Predicted: 46, MissesInRoadFires: 40, RoadFireTotal: 50})
	s := Validation(v).String()
	if !strings.Contains(s, "46.0%") {
		t.Errorf("accuracy missing: %s", s)
	}
	if !strings.Contains(s, "656") {
		t.Errorf("paper reference missing: %s", s)
	}
}
