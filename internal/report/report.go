// Package report renders analysis results as aligned text tables, CSV and
// JSON — the layer that turns risk-engine outputs into the paper's tables
// and figure series, including side-by-side paper-vs-measured comparisons
// for EXPERIMENTS.md.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row built from the given cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				b.WriteString(pad(c, widths[i]))
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		sep := make([]string, len(t.Header))
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// pad right-pads (left-aligns) text to width; numeric-looking cells are
// left-padded (right-aligned).
func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	fill := strings.Repeat(" ", w-len(s))
	if looksNumeric(s) {
		return fill + s
	}
	return s + fill
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case r == '.' || r == ',' || r == '-' || r == '+' || r == '%' || r == 'x':
		default:
			return false
		}
	}
	return true
}

// WriteCSV emits the table as CSV (header then rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Header) > 0 {
		if err := cw.Write(t.Header); err != nil {
			return fmt.Errorf("report: writing CSV header: %w", err)
		}
	}
	for i, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("report: flushing CSV: %w", err)
	}
	return nil
}

// WriteJSON emits the table as a JSON object array keyed by header.
func (t *Table) WriteJSON(w io.Writer) error {
	out := make([]map[string]string, 0, len(t.Rows))
	for _, row := range t.Rows {
		obj := map[string]string{}
		for i, c := range row {
			key := fmt.Sprintf("col%d", i)
			if i < len(t.Header) {
				key = t.Header[i]
			}
			obj[key] = c
		}
		out = append(out, obj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("report: encoding JSON: %w", err)
	}
	return nil
}

// WriteMarkdown emits the table as a GitHub-flavored markdown table with
// the title as a heading, the format EXPERIMENTS.md embeds.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		row(t.Header)
		sep := make([]string, len(t.Header))
		for i := range sep {
			sep[i] = "---"
		}
		row(sep)
	}
	for _, r := range t.Rows {
		row(r)
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("report: writing markdown: %w", err)
	}
	return nil
}

// Itoa formats an int with thousands separators (matching the paper's
// number style).
func Itoa(n int) string {
	neg := n < 0
	if neg {
		n = -n
	}
	s := fmt.Sprintf("%d", n)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		return "-" + out
	}
	return out
}

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct formats a percentage with one decimal and a % suffix.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// BarChart renders a horizontal ASCII bar chart (for figure-series
// outputs like Figure 5/8/12), scaling bars to maxWidth characters.
func BarChart(title string, labels []string, values []int, maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 50
	}
	max := 1
	wLabel := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels) > i && len(labels[i]) > wLabel {
			wLabel = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := v * maxWidth / max
		fmt.Fprintf(&b, "%s  %s %s\n", pad(label, wLabel), strings.Repeat("#", n), Itoa(v))
	}
	return b.String()
}
