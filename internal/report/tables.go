package report

import (
	"fmt"

	"fivealarms/internal/dirs"
	"fivealarms/internal/geodata"
	"fivealarms/internal/risk"
	"fivealarms/internal/serve/api"
	"fivealarms/internal/whp"
)

// The paper-table renderers consume the v1 DTO types
// (internal/serve/api) rather than raw risk-engine structs: the CLI
// and the HTTP server present the same numbers through the same
// contract, so the two outputs cannot drift apart.

// Table1 renders the historical overlay in the paper's Table 1 layout,
// with the paper's own numbers alongside for comparison.
func Table1(tbl api.Table1) *Table {
	t := &Table{
		Title: "Table 1: Historical wildfire statistics for the US (measured vs paper)",
		Header: []string{
			"Year", "Fires", "Acres (M)", "Tx in perimeters", "Tx/M-acre",
			"paper Tx", "paper Tx/M-acre",
		},
	}
	// Newest first, like the paper (the DTO carries oldest first).
	for i := len(tbl.Rows) - 1; i >= 0; i-- {
		r := tbl.Rows[i]
		paperTx, paperRate := "-", "-"
		if p, ok := geodata.PaperTable1ByYear(r.Year); ok {
			paperTx = Itoa(p.TransceiversIn)
			paperRate = Itoa(p.TransceiversPerMA)
		}
		t.AddRow(
			fmt.Sprintf("%d", r.Year),
			Itoa(r.Fires),
			fmt.Sprintf("%.3f", r.AcresBurned/1e6),
			Itoa(r.TransceiversIn),
			F1(r.PerMillionAcres),
			paperTx,
			paperRate,
		)
	}
	return t
}

// Table2 renders the provider risk breakdown with the paper's Table 2
// percentages alongside.
func Table2(tbl api.Table2) *Table {
	t := &Table{
		Title: "Table 2: Cellular service provider risk (measured vs paper %)",
		Header: []string{
			"Provider", "WHP M", "WHP H", "WHP VH",
			"%M", "%H", "%VH", "paper %M", "paper %H", "paper %VH",
		},
	}
	paper := map[string]geodata.ProviderRiskRow{}
	for _, p := range geodata.PaperTable2 {
		paper[p.Provider] = p
	}
	for _, r := range tbl.Rows {
		pm, ph, pvh := "-", "-", "-"
		if p, ok := paper[r.Provider]; ok {
			pm, ph, pvh = F2(p.PctM), F2(p.PctH), F2(p.PctVH)
		}
		t.AddRow(r.Provider,
			Itoa(r.Moderate), Itoa(r.High), Itoa(r.VeryHigh),
			F2(r.PctModerate), F2(r.PctHigh), F2(r.PctVeryHigh), pm, ph, pvh)
	}
	return t
}

// Table3 renders the radio-technology risk breakdown.
func Table3(tbl api.Table3) *Table {
	t := &Table{
		Title:  "Table 3: Cell transceiver types at risk (measured vs paper total)",
		Header: []string{"Type", "WHP VH", "WHP H", "WHP M", "Total", "paper Total"},
	}
	paper := map[string]geodata.RadioRiskRow{}
	for _, p := range geodata.PaperTable3 {
		paper[p.Radio] = p
	}
	for _, r := range tbl.Rows {
		pt := "-"
		if p, ok := paper[r.Radio]; ok {
			pt = Itoa(p.Total)
		}
		t.AddRow(r.Radio, Itoa(r.VeryHigh), Itoa(r.High), Itoa(r.Moderate),
			Itoa(r.Total), pt)
	}
	return t
}

// Fig5 renders the case-study daily outage series (the Figure 5 bars).
func Fig5(s *dirs.Series) *Table {
	t := &Table{
		Title:  "Figure 5: Cell site outages during the fall-2019 PSPS event",
		Header: []string{"Day", "Damage", "Power", "Backhaul", "Total", "Power share"},
	}
	for d := range s.Damage {
		t.AddRow(s.Labels[d], Itoa(s.Damage[d]), Itoa(s.Power[d]),
			Itoa(s.Backhaul[d]), Itoa(s.Total(d)), Pct(100*s.PowerShare(d)))
	}
	return t
}

// Fig7 renders the national WHP class totals.
func Fig7(res api.WHPOverlay) *Table {
	t := &Table{
		Title:  "Figure 7: Transceivers per WHP class (measured vs paper)",
		Header: []string{"Class", "Transceivers", "paper"},
	}
	paper := map[whp.Class]int{
		whp.Moderate: geodata.PaperWHPModerate,
		whp.High:     geodata.PaperWHPHigh,
		whp.VeryHigh: geodata.PaperWHPVeryHigh,
	}
	for _, c := range []whp.Class{whp.Moderate, whp.High, whp.VeryHigh} {
		t.AddRow(c.String(), Itoa(res.ByClass[c.String()]), Itoa(paper[c]))
	}
	t.AddRow("total at risk", Itoa(res.AtRisk), Itoa(geodata.PaperWHPTotal))
	return t
}

// Fig8 renders the top states per class.
func Fig8(res *risk.WHPResult, topN int) *Table {
	t := &Table{
		Title:  "Figure 8: States with the most at-risk transceivers",
		Header: []string{"Rank", "State (M)", "count", "State (H)", "count", "State (VH)", "count"},
	}
	m := res.TopStates(whp.Moderate)
	h := res.TopStates(whp.High)
	vh := res.TopStates(whp.VeryHigh)
	for i := 0; i < topN; i++ {
		row := []string{fmt.Sprintf("%d", i+1)}
		for _, list := range [][]risk.StateCount{m, h, vh} {
			if i < len(list) {
				row = append(row, list[i].Abbrev, Itoa(list[i].Count))
			} else {
				row = append(row, "-", "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Fig9 renders the per-capita ranking.
func Fig9(res *risk.WHPResult, topN int) *Table {
	t := &Table{
		Title:  "Figure 9: At-risk transceivers per 1000 residents",
		Header: []string{"Rank", "State (M)", "/1000", "State (H)", "/1000", "State (VH)", "/1000"},
	}
	m := res.PerCapita(whp.Moderate)
	h := res.PerCapita(whp.High)
	vh := res.PerCapita(whp.VeryHigh)
	for i := 0; i < topN; i++ {
		row := []string{fmt.Sprintf("%d", i+1)}
		for _, list := range [][]risk.StateCount{m, h, vh} {
			if i < len(list) {
				row = append(row, list[i].Abbrev, F2(list[i].PerThousand))
			} else {
				row = append(row, "-", "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Fig10 renders the WHP x population-density matrix.
func Fig10(m *risk.ImpactMatrix) *Table {
	t := &Table{
		Title:  "Figure 10: At-risk transceivers by WHP class and county density",
		Header: []string{"WHP class", "Pop M (200k-500k)", "Pop H (500k-1.5M)", "Pop VH (>1.5M)", "Rural"},
	}
	names := []string{"moderate", "high", "very-high"}
	for r := 0; r < 3; r++ {
		t.AddRow(names[r], Itoa(m.Counts[r][0]), Itoa(m.Counts[r][1]),
			Itoa(m.Counts[r][2]), Itoa(m.Rural[r]))
	}
	t.AddRow("total", Itoa(m.Counts[0][0]+m.Counts[1][0]+m.Counts[2][0]),
		Itoa(m.Counts[0][1]+m.Counts[1][1]+m.Counts[2][1]),
		Itoa(m.VeryDenseTotal()),
		Itoa(m.Rural[0]+m.Rural[1]+m.Rural[2]))
	return t
}

// Fig12 renders the metro comparison.
func Fig12(rows []risk.MetroRow) *Table {
	t := &Table{
		Title:  "Figure 12: Metro areas with the most at-risk transceivers",
		Header: []string{"Metro", "Moderate", "High", "Very high", "Total", "VH in PopVH", "paper VH/PopVH"},
	}
	for _, r := range rows {
		paper := "-"
		if v, ok := geodata.MetroVHVeryDense[r.Metro]; ok {
			paper = Itoa(v)
		}
		t.AddRow(r.Metro, Itoa(r.Moderate), Itoa(r.High), Itoa(r.VHigh),
			Itoa(r.Total()), Itoa(r.VHVeryDense), paper)
	}
	return t
}

// Fig14 renders the corridor future-risk projection.
func Fig14(res *risk.FutureResult) *Table {
	t := &Table{
		Title:  "Figure 14: SLC-Denver corridor ecoregion projections (2040s)",
		Header: []string{"Ecoregion", "Delta", "Transceivers", "At risk now", "At risk 2040s", "Mean hazard now", "Mean hazard 2040s"},
	}
	for _, r := range res.Rows {
		t.AddRow(r.Ecoregion, fmt.Sprintf("%+.0f%%", r.DeltaPct), Itoa(r.Transceivers),
			Itoa(r.AtRiskNow), Itoa(r.AtRiskFuture),
			fmt.Sprintf("%.3f", r.MeanHazardNow), fmt.Sprintf("%.3f", r.MeanHazardFuture))
	}
	return t
}

// Validation renders the §3.4 validation summary.
func Validation(v api.Validation) *Table {
	t := &Table{
		Title:  "Validation (2019 hold-out season, paper section 3.4)",
		Header: []string{"Metric", "Measured", "Paper"},
	}
	t.AddRow("transceivers in 2019 perimeters", Itoa(v.InPerimeter), Itoa(geodata.PaperValidation2019InPerimeter))
	t.AddRow("predicted by WHP (moderate+)", Itoa(v.Predicted), Itoa(geodata.PaperValidation2019Predicted))
	t.AddRow("accuracy", Pct(v.AccuracyPct), fmt.Sprintf("%d%%", geodata.PaperValidationAccuracyPct))
	t.AddRow("misses inside road-corridor fires", Itoa(v.MissesInRoadFires), Itoa(geodata.PaperValidation2019RoadFires))
	t.AddRow("accuracy excluding road fires", Pct(v.AccuracyExclRoadPct), fmt.Sprintf("%d%%", geodata.PaperValidationExclRoadPct))
	return t
}

// Extension renders the §3.8 very-high buffer extension summary (the
// coarse national-raster path of the Extend DTO).
func Extension(e api.Extend) *Table {
	t := &Table{
		Title:  "Extension of very-high WHP areas (paper section 3.8)",
		Header: []string{"Metric", "Measured", "Paper"},
	}
	t.AddRow("buffer distance (m)", fmt.Sprintf("%.0f", e.DistM), "804.67 (0.5 mi)")
	t.AddRow("very-high before", Itoa(e.VHBefore), Itoa(geodata.PaperWHPVeryHigh))
	t.AddRow("very-high after", Itoa(e.VHAfter), Itoa(geodata.PaperExtendedVHCount))
	t.AddRow("total at-risk before", Itoa(e.TotalAtRiskBefore), Itoa(geodata.PaperWHPTotal))
	t.AddRow("total at-risk after", Itoa(e.TotalAtRiskAfter), Itoa(geodata.PaperExtendedTotal))
	t.AddRow("accuracy before", Pct(e.AccuracyBeforePct), fmt.Sprintf("%d%%", geodata.PaperValidationAccuracyPct))
	t.AddRow("accuracy after", Pct(e.AccuracyAfterPct), fmt.Sprintf("%d%%", geodata.PaperExtendedAccuracyPct))
	return t
}

// CaseStudy renders the §3.2 case-study headline numbers.
func CaseStudy(r *risk.CaseStudyResult) *Table {
	t := &Table{
		Title:  "Case study: fall-2019 California PSPS (paper section 3.2)",
		Header: []string{"Metric", "Measured", "Paper"},
	}
	t.AddRow("cell sites in region", Itoa(r.Sites), "-")
	t.AddRow("peak day", r.Series.Labels[r.PeakDay], "Oct 28")
	t.AddRow("peak sites out", Itoa(r.PeakOut), Itoa(geodata.PaperDIRSPeakSitesOut))
	t.AddRow("peak power share", Pct(100*r.PeakPowerShare), "80%")
	t.AddRow("final-day sites out", Itoa(r.FinalOut), Itoa(geodata.PaperDIRSFinalSitesOut))
	t.AddRow("final-day damaged", Itoa(r.FinalDamaged), Itoa(geodata.PaperDIRSFinalDamaged))
	t.AddRow("counties reporting", Itoa(r.Counties), Itoa(geodata.PaperDIRSCounties))
	return t
}
