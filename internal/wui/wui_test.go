package wui

import (
	"testing"

	"fivealarms/internal/census"
	"fivealarms/internal/conus"
	"fivealarms/internal/geom"
	"fivealarms/internal/whp"
)

var (
	testWorld    = conus.Build(conus.Config{Seed: 7, CellSizeM: 20000})
	testWHP      = whp.Build(testWorld, testWorld.Grid, whp.Config{})
	testCounties = census.Synthesize(testWorld, 7)
	testWUI      = Build(testWorld, testCounties, testWHP, Config{})
)

func TestClassStrings(t *testing.T) {
	if NonWUI.String() != "non-wui" || Interface.String() != "interface" || Intermix.String() != "intermix" {
		t.Error("class strings")
	}
	if Class(9).String() != "invalid" {
		t.Error("invalid class")
	}
	if NonWUI.IsWUI() || !Interface.IsWUI() || !Intermix.IsWUI() {
		t.Error("IsWUI")
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults(20000)
	if cfg.MinDensityPerKM2 != 15 || cfg.VegHazard != 0.10 || cfg.MinPatchKM2 != 5 {
		t.Errorf("defaults = %+v", cfg)
	}
	// Interface buffer floors at one cell.
	if cfg.InterfaceDistM != 20000 {
		t.Errorf("interface dist = %v, want floored to cell size", cfg.InterfaceDistM)
	}
}

func TestWUIExists(t *testing.T) {
	counts := testWUI.CellCounts()
	if counts[Intermix] == 0 {
		t.Error("no intermix WUI cells")
	}
	if counts[Interface] == 0 {
		t.Error("no interface WUI cells")
	}
	// WUI must be a minority of the grid.
	total := counts[NonWUI] + counts[Interface] + counts[Intermix]
	wuiFrac := float64(counts[Interface]+counts[Intermix]) / float64(total)
	if wuiFrac > 0.5 {
		t.Errorf("WUI fraction = %v, implausibly high", wuiFrac)
	}
}

func TestUrbanCoreNotIntermix(t *testing.T) {
	// Downtown LA: dense but hazard-free (nonburnable core) — must not be
	// intermix. It may legitimately be interface (mountains within one
	// coarse cell).
	p := testWorld.ToXY(geom.Point{X: -118.2437, Y: 34.0522})
	if c := testWUI.ClassAt(p); c == Intermix {
		t.Errorf("downtown LA = %v", c)
	}
}

func TestEmptyWildlandNotWUI(t *testing.T) {
	// Unpopulated Nevada basin: vegetated but nobody lives there.
	p := testWorld.ToXY(geom.Point{X: -117.0, Y: 41.2})
	if c := testWUI.ClassAt(p); c != NonWUI {
		t.Errorf("empty basin = %v, want non-wui", c)
	}
	// Off-grid points are NonWUI.
	if testWUI.ClassAt(geom.Pt(1e12, 1e12)) != NonWUI {
		t.Error("off-grid should be non-wui")
	}
}

func TestWUIPopulationShare(t *testing.T) {
	pop := testWUI.Population()
	total := float64(testCounties.TotalPopulation())
	frac := pop / total
	// Radeloff: about a third of US homes are in the WUI; the synthetic
	// analog should land in a broad band around that.
	if frac < 0.05 || frac > 0.75 {
		t.Errorf("WUI population share = %.3f", frac)
	}
}

func TestWUIHugsCityEdges(t *testing.T) {
	// The §3.7 claim: WUI cells cluster along city edges. Measure the
	// mean distance to the nearest city for WUI cells versus all
	// inside-CONUS cells — WUI must sit markedly closer.
	// Compare the WUI share of the metro fringe (moderate urban
	// intensity) against the deep rural field (near-zero intensity):
	// city edges must be far richer in WUI.
	g := testWorld.Grid
	fringe, fringeN := 0, 0
	rural, ruralN := 0, 0
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			if !testWorld.Inside.Get(cx, cy) {
				continue
			}
			u := testWorld.Urban.At(cx, cy)
			isWUI := Class(testWUI.Classes.At(cx, cy)).IsWUI()
			switch {
			case u >= 0.05 && u < 0.45:
				fringeN++
				if isWUI {
					fringe++
				}
			case u < 0.005:
				ruralN++
				if isWUI {
					rural++
				}
			}
		}
	}
	if fringeN == 0 || ruralN == 0 {
		t.Fatal("empty bands")
	}
	fringeFrac := float64(fringe) / float64(fringeN)
	ruralFrac := float64(rural) / float64(ruralN)
	if fringeFrac <= 2*ruralFrac {
		t.Errorf("WUI share at the metro fringe (%.3f) should far exceed deep rural (%.3f)",
			fringeFrac, ruralFrac)
	}
}
