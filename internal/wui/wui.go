// Package wui maps the Wildland-Urban Interface following the scheme of
// Radeloff et al. (2018), the paper's reference [29]: populated places
// meet wildland vegetation either by intermixing with it ("intermix WUI")
// or by abutting a large vegetated area ("interface WUI"). The paper's
// §3.7 key finding — wildfire impact on cell infrastructure concentrates
// along city edges in the WUI — is quantified over this layer.
//
// The synthetic analog substitutes the population surface for census
// housing density and the continuous hazard field for vegetation cover;
// thresholds follow the Radeloff methodology's structure (a density
// minimum, a vegetation minimum, a proximity buffer to large wildland
// patches).
package wui

import (
	"fivealarms/internal/census"
	"fivealarms/internal/conus"
	"fivealarms/internal/coverage"
	"fivealarms/internal/geom"
	"fivealarms/internal/raster"
	"fivealarms/internal/whp"
)

// Class is the WUI category of a cell.
type Class uint8

// WUI classes.
const (
	NonWUI Class = iota
	Interface
	Intermix
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case NonWUI:
		return "non-wui"
	case Interface:
		return "interface"
	case Intermix:
		return "intermix"
	default:
		return "invalid"
	}
}

// IsWUI reports whether the class is interface or intermix.
func (c Class) IsWUI() bool { return c == Interface || c == Intermix }

// Config tunes the mapping. Zero values select defaults mirroring the
// Radeloff thresholds' roles.
type Config struct {
	// MinDensityPerKM2 is the minimum population density of a WUI cell
	// (Radeloff: 6.17 housing units/km2 ~ 15 people/km2). Default 15.
	MinDensityPerKM2 float64
	// VegHazard is the hazard level treated as wildland vegetation.
	// Default 0.10.
	VegHazard float64
	// MinPatchKM2 is the minimum area of a wildland patch that creates
	// interface WUI around it (Radeloff: 5 km2). Default 5.
	MinPatchKM2 float64
	// InterfaceDistM is the buffer distance around large patches
	// (Radeloff: 2.4 km). Default 2400, floored at one cell so coarse
	// rasters still produce interface cells.
	InterfaceDistM float64
}

func (c Config) withDefaults(cell float64) Config {
	if c.MinDensityPerKM2 == 0 {
		c.MinDensityPerKM2 = 15
	}
	if c.VegHazard == 0 {
		c.VegHazard = 0.10
	}
	if c.MinPatchKM2 == 0 {
		c.MinPatchKM2 = 5
	}
	if c.InterfaceDistM == 0 {
		c.InterfaceDistM = 2400
	}
	if c.InterfaceDistM < cell {
		c.InterfaceDistM = cell
	}
	return c
}

// Map is the realized WUI layer.
type Map struct {
	Cfg     Config
	Classes *raster.ClassGrid
	// Pop is the population surface used for density.
	Pop *raster.FloatGrid
}

// Build computes the WUI over the world grid.
func Build(w *conus.World, counties *census.Counties, hazard *whp.Map, cfg Config) *Map {
	g := w.Grid
	cfg = cfg.withDefaults(g.CellSize)
	pop := coverage.BuildPopulation(w, counties)

	// Wildland vegetation mask and its large patches.
	veg := raster.NewBitGrid(g)
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			if hazard.Hazard.At(cx, cy) >= cfg.VegHazard {
				veg.Set(cx, cy, true)
			}
		}
	}
	labels := raster.LabelComponents(veg)
	cellKM2 := g.CellArea() / 1e6
	bigPatch := raster.NewBitGrid(g)
	for i, id := range labels.Data {
		if id > 0 && float64(labels.Sizes[id])*cellKM2 >= cfg.MinPatchKM2 {
			cy := i / g.NX
			cx := i % g.NX
			bigPatch.Set(cx, cy, true)
		}
	}
	nearBig := raster.DilateByDistance(bigPatch, cfg.InterfaceDistM)

	classes := raster.NewClassGrid(g)
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			density := pop.At(cx, cy) / cellKM2
			if density < cfg.MinDensityPerKM2 {
				continue
			}
			switch {
			case veg.Get(cx, cy):
				classes.Set(cx, cy, uint8(Intermix))
			case nearBig.Get(cx, cy):
				classes.Set(cx, cy, uint8(Interface))
			}
		}
	}
	return &Map{Cfg: cfg, Classes: classes, Pop: pop}
}

// ClassAt samples the WUI class at a projected point (NonWUI off-grid).
func (m *Map) ClassAt(p geom.Point) Class {
	v, ok := m.Classes.Sample(p)
	if !ok {
		return NonWUI
	}
	return Class(v)
}

// CellCounts returns the number of cells per class.
func (m *Map) CellCounts() map[Class]int {
	h := m.Classes.Histogram()
	return map[Class]int{
		NonWUI:    h[uint8(NonWUI)],
		Interface: h[uint8(Interface)],
		Intermix:  h[uint8(Intermix)],
	}
}

// Population returns the population living in WUI cells.
func (m *Map) Population() float64 {
	g := m.Classes.Geometry
	var t float64
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			if Class(m.Classes.At(cx, cy)).IsWUI() {
				t += m.Pop.At(cx, cy)
			}
		}
	}
	return t
}
