// Package rng provides a deterministic, allocation-free pseudo-random
// number generator and the sampling distributions the synthetic data
// generators rely on. Every generator in the fivealarms repository takes an
// explicit *rng.Source so that a given seed reproduces an identical world
// across machines and Go versions — a requirement the stdlib does not
// guarantee across releases for all of math/rand's helper methods.
//
// The core generator is PCG-XSH-RR 64/32 (O'Neill 2014) seeded through
// SplitMix64, a combination with good statistical quality and a tiny state.
package rng

import "math"

// Source is a deterministic PCG32 random number generator. The zero value
// is NOT usable; construct with New.
type Source struct {
	state uint64
	inc   uint64
}

// New returns a Source seeded deterministically from seed. Distinct seeds
// yield independent-looking streams.
func New(seed uint64) *Source {
	s := &Source{}
	s.Reseed(seed)
	return s
}

// NewStream returns a Source on an independent stream: two sources with the
// same seed but different stream IDs produce uncorrelated sequences. Use it
// to give each subsystem (fires, transceivers, counties, ...) its own
// stream from one master seed.
func NewStream(seed, stream uint64) *Source {
	s := &Source{}
	sm := splitMix64(seed)
	s.state = splitMix64(sm ^ 0x9e3779b97f4a7c15)
	s.inc = (splitMix64(stream)<<1 | 1)
	s.Uint32() // advance once to decorrelate
	return s
}

// Reseed resets the source to the deterministic state for seed.
func (s *Source) Reseed(seed uint64) {
	s.state = splitMix64(seed)
	s.inc = (splitMix64(seed^0xda3e39cb94b95bdb)<<1 | 1)
	s.Uint32()
}

func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uint32 returns the next 32 random bits.
func (s *Source) Uint32() uint32 {
	old := s.state
	s.state = old*6364136223846793005 + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	return uint64(s.Uint32())<<32 | uint64(s.Uint32())
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint32(n)
	for {
		v := s.Uint32()
		prod := uint64(v) * uint64(bound)
		low := uint32(prod)
		if low >= bound || low >= (-bound)%bound {
			return int(prod >> 32)
		}
	}
}

// Int63n returns a uniform int64 in [0, n). It panics when n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	max := uint64(1)<<63 - 1
	limit := max - max%uint64(n)
	for {
		v := s.Uint64() >> 1
		if v < limit {
			return int64(v % uint64(n))
		}
	}
}

// Range returns a uniform float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.Float64() < p }

// Normal returns a normally distributed float64 with the given mean and
// standard deviation (Box-Muller, polar form).
func (s *Source) Normal(mean, stddev float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Exponential returns an exponentially distributed float64 with the given
// mean (= 1/rate).
func (s *Source) Exponential(mean float64) float64 {
	return -mean * math.Log(1-s.Float64())
}

// Pareto returns a Pareto(xm, alpha) variate: xm * U^(-1/alpha). Heavy
// tails for alpha <= 2; fire sizes in the HOT framework follow this family.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := 1 - s.Float64() // (0, 1]
	return xm * math.Pow(u, -1/alpha)
}

// TruncatedPareto returns a Pareto(xm, alpha) variate truncated to
// [xm, cap] by inverse-CDF sampling of the truncated distribution (not by
// rejection, so it never loops).
func (s *Source) TruncatedPareto(xm, cap, alpha float64) float64 {
	if cap <= xm {
		return xm
	}
	u := s.Float64()
	hc := math.Pow(xm/cap, alpha)
	return xm * math.Pow(1-u*(1-hc), -1/alpha)
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation above 30.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := s.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf returns an integer in [0, n) with probability proportional to
// 1/(i+1)^s, by inverse-CDF over precomputed weights. For repeated sampling
// use NewZipf.
func (s *Source) Zipf(n int, exponent float64) int {
	z := NewZipf(n, exponent)
	return z.Sample(s)
}

// Zipfian samples from a Zipf distribution over ranks [0, n).
type Zipfian struct {
	cdf []float64
}

// NewZipf precomputes a Zipf sampler over n ranks with the given exponent.
func NewZipf(n int, exponent float64) *Zipfian {
	if n <= 0 {
		n = 1
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), exponent)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipfian{cdf: cdf}
}

// Sample draws a rank from the distribution.
func (z *Zipfian) Sample(s *Source) int {
	u := s.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Categorical samples an index from the given non-negative weights. Zero
// total weight returns 0.
func (s *Source) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	u := s.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the first n elements using the supplied swap function
// (Fisher-Yates).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
