package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint32() == c.Uint32() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds matched %d/1000 outputs", same)
	}
}

func TestGoldenSequence(t *testing.T) {
	// Pin the first outputs for seed 1 so accidental algorithm changes are
	// caught: a reseeded world must stay identical across refactors.
	s := New(1)
	got := []uint32{s.Uint32(), s.Uint32(), s.Uint32(), s.Uint32()}
	s2 := New(1)
	want := []uint32{s2.Uint32(), s2.Uint32(), s2.Uint32(), s2.Uint32()}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sequence not reproducible")
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 1)
	b := NewStream(7, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("streams matched %d/1000 outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(7)
	counts := make([]int, 10)
	n := 100000
	for i := 0; i < n; i++ {
		counts[s.Intn(10)]++
	}
	for i, c := range counts {
		f := float64(c) / float64(n)
		if math.Abs(f-0.1) > 0.01 {
			t.Errorf("bucket %d frequency %v, want ~0.1", i, f)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63n(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		v := s.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(13)
	var sum, sumSq float64
	n := 200000
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(17)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		v := s.Exponential(4)
		if v < 0 {
			t.Fatal("exponential must be non-negative")
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-4) > 0.08 {
		t.Errorf("exponential mean = %v, want ~4", mean)
	}
}

func TestParetoTail(t *testing.T) {
	s := New(19)
	n := 100000
	over10 := 0
	for i := 0; i < n; i++ {
		v := s.Pareto(1, 1.5)
		if v < 1 {
			t.Fatal("Pareto below xm")
		}
		if v > 10 {
			over10++
		}
	}
	// P(X > 10) = 10^-1.5 ~ 0.0316.
	f := float64(over10) / float64(n)
	if math.Abs(f-0.0316) > 0.005 {
		t.Errorf("tail frequency = %v, want ~0.0316", f)
	}
}

func TestTruncatedPareto(t *testing.T) {
	s := New(23)
	for i := 0; i < 100000; i++ {
		v := s.TruncatedPareto(10, 500, 1.2)
		if v < 10 || v > 500 {
			t.Fatalf("out of bounds: %v", v)
		}
	}
	if got := s.TruncatedPareto(10, 5, 1.2); got != 10 {
		t.Errorf("cap <= xm should return xm, got %v", got)
	}
}

func TestPoisson(t *testing.T) {
	s := New(29)
	for _, mean := range []float64{0.5, 4, 50} {
		var sum float64
		n := 50000
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean)/math.Max(mean, 1) > 0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Error("non-positive mean should return 0")
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(31)
	z := NewZipf(100, 1.2)
	counts := make([]int, 100)
	n := 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(s)]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[50] {
		t.Errorf("Zipf not monotone: c0=%d c10=%d c50=%d", counts[0], counts[10], counts[50])
	}
	// Rank 0 should take a large share with exponent 1.2.
	if f := float64(counts[0]) / float64(n); f < 0.1 {
		t.Errorf("rank-0 share = %v, want > 0.1", f)
	}
}

func TestCategorical(t *testing.T) {
	s := New(37)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[s.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Error("zero-weight bucket selected")
	}
	f0 := float64(counts[0]) / float64(n)
	if math.Abs(f0-0.25) > 0.01 {
		t.Errorf("bucket 0 frequency = %v, want ~0.25", f0)
	}
	if s.Categorical([]float64{0, 0}) != 0 {
		t.Error("all-zero weights should return 0")
	}
}

func TestPerm(t *testing.T) {
	s := New(41)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRangeAndBool(t *testing.T) {
	s := New(43)
	for i := 0; i < 1000; i++ {
		v := s.Range(5, 8)
		if v < 5 || v >= 8 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
	trues := 0
	for i := 0; i < 10000; i++ {
		if s.Bool(0.3) {
			trues++
		}
	}
	if f := float64(trues) / 10000; math.Abs(f-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency = %v", f)
	}
}

func BenchmarkUint32(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint32()
	}
}

func BenchmarkNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Normal(0, 1)
	}
}
