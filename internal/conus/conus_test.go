package conus

import (
	"math"
	"testing"

	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
)

// testWorld builds a coarse world once for the whole package test run.
var testWorld = Build(Config{Seed: 7, CellSizeM: 20000})

func TestBuildDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Seed != 1 || cfg.CellSizeM != 5000 || cfg.RoadNeighbors != 3 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestWorldDeterministic(t *testing.T) {
	a := Build(Config{Seed: 7, CellSizeM: 40000})
	b := Build(Config{Seed: 7, CellSizeM: 40000})
	if a.Grid != b.Grid {
		t.Fatal("grid geometry differs")
	}
	for i := range a.StateZone.Data {
		if a.StateZone.Data[i] != b.StateZone.Data[i] {
			t.Fatal("state zones differ between identical builds")
		}
	}
	if a.Roads.Count() != b.Roads.Count() {
		t.Fatal("roads differ between identical builds")
	}
}

func TestInsideCoverage(t *testing.T) {
	w := testWorld
	in := w.Inside.Count()
	total := w.Grid.Cells()
	frac := float64(in) / float64(total)
	// CONUS fills roughly half its bounding box.
	if frac < 0.3 || frac > 0.8 {
		t.Errorf("inside fraction = %v", frac)
	}
	// Total inside area should approximate the real CONUS land area
	// (~8.1M km^2) within the tolerance of a coarse outline.
	areaKM2 := w.Inside.AreaSquareMeters() / 1e6
	if areaKM2 < 5.5e6 || areaKM2 > 10e6 {
		t.Errorf("CONUS area = %.3g km^2, want ~8e6", areaKM2)
	}
}

func TestStateAtKnownCities(t *testing.T) {
	w := testWorld
	tests := []struct {
		name     string
		lon, lat float64
		want     string
	}{
		{"Los Angeles", -118.2437, 34.0522, "CA"},
		{"Sacramento", -121.4944, 38.5816, "CA"},
		{"Miami", -80.1918, 25.7617, "FL"},
		{"Dallas", -96.7970, 32.7767, "TX"},
		{"Denver", -104.9903, 39.7392, "CO"},
		{"Salt Lake City", -111.8910, 40.7608, "UT"},
		{"Chicago", -87.6298, 41.8781, "IL"},
		{"Atlanta", -84.3880, 33.7490, "GA"},
	}
	for _, tc := range tests {
		xy := w.ToXY(geom.Point{X: tc.lon, Y: tc.lat})
		si := w.StateAt(xy)
		if si < 0 {
			t.Errorf("%s: outside CONUS", tc.name)
			continue
		}
		if got := geodata.States[si].Abbrev; got != tc.want {
			t.Errorf("%s: state = %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestStateAtOutside(t *testing.T) {
	w := testWorld
	// Pacific Ocean and mid-Atlantic.
	for _, ll := range []geom.Point{{X: -130, Y: 40}, {X: -60, Y: 35}, {X: -95, Y: 20}} {
		if si := w.StateAt(w.ToXY(ll)); si != -1 {
			t.Errorf("point %v should be outside CONUS, got state %d", ll, si)
		}
	}
}

func TestStateZoneAreasRoughlyProportional(t *testing.T) {
	w := testWorld
	counts := make([]int, len(geodata.States))
	for cy := 0; cy < w.Grid.NY; cy++ {
		for cx := 0; cx < w.Grid.NX; cx++ {
			if v := w.StateZone.At(cx, cy); v > 0 {
				counts[v-1]++
			}
		}
	}
	// Texas must be the largest zone, Rhode Island among the smallest.
	txIdx := geodata.StateIndex("TX")
	riIdx := geodata.StateIndex("RI")
	maxIdx := 0
	for i, c := range counts {
		if c > counts[maxIdx] {
			maxIdx = i
		}
	}
	if maxIdx != txIdx {
		t.Errorf("largest zone = %s, want TX", geodata.States[maxIdx].Abbrev)
	}
	if counts[riIdx] >= counts[txIdx]/10 {
		t.Errorf("RI zone (%d cells) should be far smaller than TX (%d)", counts[riIdx], counts[txIdx])
	}
	// Every state should have at least one cell at 20 km resolution except
	// possibly DC.
	for i, c := range counts {
		if c == 0 && geodata.States[i].Abbrev != "DC" {
			t.Errorf("state %s has an empty zone", geodata.States[i].Abbrev)
		}
	}
}

func TestUrbanFieldPeaksAtCities(t *testing.T) {
	w := testWorld
	la := w.ToXY(geom.Point{X: -118.2437, Y: 34.0522})
	ruralNV := w.ToXY(geom.Point{X: -117.5, Y: 41.5})
	if w.UrbanAt(la) <= w.UrbanAt(ruralNV) {
		t.Errorf("urban intensity at LA (%v) should exceed rural Nevada (%v)",
			w.UrbanAt(la), w.UrbanAt(ruralNV))
	}
	if w.UrbanAt(la) < 0.5 {
		t.Errorf("LA urban intensity = %v, want >= 0.5", w.UrbanAt(la))
	}
}

func TestRoadsConnectCities(t *testing.T) {
	w := testWorld
	if w.Roads.Count() == 0 {
		t.Fatal("no road cells")
	}
	// Every city cell should be on or near a road.
	for _, c := range w.Cities {
		if d := w.RoadDistAt(c.XY); d > 2*w.Grid.CellSize {
			t.Errorf("city %s is %v m from nearest road", c.Name, d)
		}
	}
	// A remote point in the Nevada basin should be far from roads.
	remote := w.ToXY(geom.Point{X: -116.8, Y: 41.3})
	if d := w.RoadDistAt(remote); d < 3*w.Grid.CellSize {
		t.Errorf("remote basin point is only %v m from a road", d)
	}
}

func TestRoadDistOffGrid(t *testing.T) {
	w := testWorld
	if !math.IsInf(w.RoadDistAt(geom.Pt(1e9, 1e9)), 1) {
		t.Error("off-grid road distance should be +Inf")
	}
}

func TestProjectionRoundTripHelpers(t *testing.T) {
	w := testWorld
	ll := geom.Point{X: -100, Y: 40}
	back := w.ToLonLat(w.ToXY(ll))
	if math.Abs(back.X-ll.X) > 1e-9 || math.Abs(back.Y-ll.Y) > 1e-9 {
		t.Errorf("round trip = %v", back)
	}
}

func TestCitiesOfState(t *testing.T) {
	w := testWorld
	ca := w.CitiesOfState(geodata.StateIndex("CA"))
	if len(ca) < 5 {
		t.Errorf("CA should anchor several cities, got %d", len(ca))
	}
	for _, ci := range ca {
		if w.Cities[ci].State != "CA" {
			t.Errorf("city %s listed under CA", w.Cities[ci].Name)
		}
	}
}

func TestContains(t *testing.T) {
	w := testWorld
	if !w.Contains(w.ToXY(geom.Point{X: -98, Y: 39})) {
		t.Error("Kansas should be inside")
	}
	if w.Contains(w.ToXY(geom.Point{X: -130, Y: 45})) {
		t.Error("Pacific should be outside")
	}
}

func TestOutlineValid(t *testing.T) {
	o := testWorld.Outline()
	if !o.Valid() {
		t.Fatal("outline invalid")
	}
	if !o.Exterior.IsCCW() {
		t.Error("outline should be CCW")
	}
}

func BenchmarkBuild40km(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Build(Config{Seed: 1, CellSizeM: 40000})
	}
}

func BenchmarkStateAt(b *testing.B) {
	w := testWorld
	p := w.ToXY(geom.Point{X: -100, Y: 40})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.StateAt(p)
	}
}
