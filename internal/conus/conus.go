// Package conus assembles the synthetic "digital conterminous US" that all
// generators and analyses share: a projected raster frame (CONUS Albers), a
// state-zone raster (weighted-Voronoi regions around real state centroids
// clipped to a coarse CONUS outline), an urban-intensity field anchored at
// real city locations, and a highway network connecting the gazetteer
// cities.
//
// The world is deterministic in its configuration: the same Config always
// produces the identical World. See DESIGN.md for why this substitution for
// TIGER/Census geometry preserves the analyses' behaviour.
package conus

import (
	"math"

	"fivealarms/internal/geodata"
	"fivealarms/internal/geom"
	"fivealarms/internal/noise"
	"fivealarms/internal/proj"
	"fivealarms/internal/raster"
)

// Config parameterizes world construction.
type Config struct {
	// Seed drives the noise fields. Defaults to 1 when zero (so the zero
	// Config is usable).
	Seed uint64
	// CellSizeM is the edge length of the world raster cells in meters.
	// Defaults to 5000 m. The USFS WHP ships at 270 m; smaller cells cost
	// proportionally more memory and time.
	CellSizeM float64
	// RoadNeighbors is how many nearest cities each city connects to in
	// the synthetic highway graph. Defaults to 3.
	RoadNeighbors int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CellSizeM <= 0 {
		c.CellSizeM = 5000
	}
	if c.RoadNeighbors <= 0 {
		c.RoadNeighbors = 3
	}
	return c
}

// City is a gazetteer city with its projected position.
type City struct {
	geodata.City
	XY       geom.Point // projected (Albers) position
	SigmaM   float64    // urban gaussian radius in meters
	StateIdx int        // index into geodata.States
}

// World is the shared geospatial substrate.
type World struct {
	Cfg  Config
	Proj *proj.Albers
	Grid raster.Geometry

	// Inside marks cells within the CONUS outline.
	Inside *raster.BitGrid
	// StateZone holds stateIdx+1 per cell; 0 = outside CONUS.
	StateZone *raster.ClassGrid
	// Urban is the summed city gaussian intensity (unitless, ~0..2).
	Urban *raster.FloatGrid
	// Roads marks highway-corridor cells.
	Roads *raster.BitGrid
	// RoadDist is the distance in meters from each cell to the nearest
	// highway cell.
	RoadDist *raster.FloatGrid

	Cities []City

	outline   geom.Polygon // projected outline
	noiseFld  *noise.Field
	statesXY  []geom.Point  // projected state centroids
	stateWt   []float64     // sqrt(area) weights for the weighted Voronoi
	cityByIdx map[int][]int // state index -> city indices

	// Road centerlines and a per-cell bucket of nearby segment indices,
	// so RoadDistAt can return exact sub-cell distances near corridors.
	roadSegs []roadSegment
	cellSegs map[int32][]int32
}

type roadSegment struct{ a, b geom.Point }

// Build constructs the world for cfg. Construction cost is dominated by
// the raster size (Cells ~ 3.6M at 2.7 km, ~1M at 5 km).
func Build(cfg Config) *World {
	cfg = cfg.withDefaults()
	w := &World{
		Cfg:      cfg,
		Proj:     proj.ConusAlbers(),
		noiseFld: noise.New(cfg.Seed),
	}

	// Project the outline.
	ring := make(geom.Ring, len(geodata.ConusOutline))
	for i, v := range geodata.ConusOutline {
		ring[i] = w.Proj.Forward(geom.Point{X: v.Lon, Y: v.Lat})
	}
	if !ring.IsCCW() {
		ring = ring.Reverse()
	}
	w.outline = geom.NewPolygon(ring)

	w.Grid = raster.NewGeometry(w.outline.BBox(), cfg.CellSizeM)
	w.Inside = raster.FillPolygon(w.Grid, w.outline)

	// Projected state centroids and Voronoi weights.
	w.statesXY = make([]geom.Point, len(geodata.States))
	w.stateWt = make([]float64, len(geodata.States))
	for i, s := range geodata.States {
		w.statesXY[i] = w.Proj.Forward(geom.Point{X: s.Lon, Y: s.Lat})
		w.stateWt[i] = math.Sqrt(s.AreaKM2)
	}
	w.buildStateZones()
	w.buildCities()
	w.buildUrbanField()
	w.buildRoads()
	return w
}

// buildStateZones assigns each inside cell to the state minimizing
// dist/weight (multiplicatively weighted Voronoi), which yields zone areas
// roughly proportional to real state areas.
func (w *World) buildStateZones() {
	w.StateZone = raster.NewClassGrid(w.Grid)
	for cy := 0; cy < w.Grid.NY; cy++ {
		for cx := 0; cx < w.Grid.NX; cx++ {
			if !w.Inside.Get(cx, cy) {
				continue
			}
			p := w.Grid.Center(cx, cy)
			best := -1
			bestD := math.Inf(1)
			for i, c := range w.statesXY {
				dx := p.X - c.X
				dy := p.Y - c.Y
				d := math.Sqrt(dx*dx+dy*dy) / w.stateWt[i]
				if d < bestD {
					bestD = d
					best = i
				}
			}
			w.StateZone.Set(cx, cy, uint8(best+1))
		}
	}
}

func (w *World) buildCities() {
	w.Cities = make([]City, 0, len(geodata.Cities))
	w.cityByIdx = map[int][]int{}
	for _, c := range geodata.Cities {
		xy := w.Proj.Forward(geom.Point{X: c.Lon, Y: c.Lat})
		si := geodata.StateIndex(c.State)
		// Urban radius grows with the square root of metro population:
		// ~8 km sigma per sqrt(million people).
		sigma := 8000 * math.Sqrt(float64(c.MetroPop)/1e6)
		w.cityByIdx[si] = append(w.cityByIdx[si], len(w.Cities))
		w.Cities = append(w.Cities, City{City: c, XY: xy, SigmaM: sigma, StateIdx: si})
	}
}

func (w *World) buildUrbanField() {
	w.Urban = raster.NewFloatGrid(w.Grid)
	for _, c := range w.Cities {
		// Add the gaussian within 4 sigma.
		r := 4 * c.SigmaM
		cx0, cy0, _ := w.Grid.CellOf(geom.Point{X: c.XY.X - r, Y: c.XY.Y - r})
		cx1, cy1, _ := w.Grid.CellOf(geom.Point{X: c.XY.X + r, Y: c.XY.Y + r})
		cx0 = clamp(cx0, 0, w.Grid.NX-1)
		cx1 = clamp(cx1, 0, w.Grid.NX-1)
		cy0 = clamp(cy0, 0, w.Grid.NY-1)
		cy1 = clamp(cy1, 0, w.Grid.NY-1)
		// Super-gaussian kernel: a flat built-up core with a sharp edge,
		// the actual footprint shape of US metros (development stops
		// abruptly at terrain and zoning boundaries). A plain gaussian's
		// long tail would suppress wildland hazard for tens of km beyond
		// the real urban edge.
		invR := 1 / (1.4 * c.SigmaM)
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				p := w.Grid.Center(cx, cy)
				dx := (p.X - c.XY.X) * invR
				dy := (p.Y - c.XY.Y) * invR
				r2 := dx*dx + dy*dy
				g := math.Exp(-r2 * r2)
				if g > 1e-4 {
					w.Urban.Set(cx, cy, w.Urban.At(cx, cy)+g)
				}
			}
		}
	}
}

// buildRoads connects each city to its RoadNeighbors nearest cities and
// rasterizes the segments.
func (w *World) buildRoads() {
	w.Roads = raster.NewBitGrid(w.Grid)
	w.cellSegs = map[int32][]int32{}
	type edge struct{ a, b int }
	seen := map[edge]bool{}
	k := w.Cfg.RoadNeighbors
	for i := range w.Cities {
		// Find k nearest.
		type nd struct {
			j int
			d float64
		}
		nearest := make([]nd, 0, len(w.Cities))
		for j := range w.Cities {
			if j == i {
				continue
			}
			nearest = append(nearest, nd{j, w.Cities[i].XY.DistanceTo(w.Cities[j].XY)})
		}
		// Partial selection sort for k smallest.
		for s := 0; s < k && s < len(nearest); s++ {
			m := s
			for t := s + 1; t < len(nearest); t++ {
				if nearest[t].d < nearest[m].d {
					m = t
				}
			}
			nearest[s], nearest[m] = nearest[m], nearest[s]
			j := nearest[s].j
			e := edge{min(i, j), max(i, j)}
			if !seen[e] {
				seen[e] = true
				w.rasterizeSegment(w.Cities[i].XY, w.Cities[j].XY)
			}
		}
	}
	w.RoadDist = raster.DistanceTransform(w.Roads)
}

// rasterizeSegment marks the cells along segment ab (grid Bresenham via
// uniform stepping at half-cell resolution), records the centerline, and
// buckets the segment under every cell it touches plus their neighbors
// for exact-distance queries.
func (w *World) rasterizeSegment(a, b geom.Point) {
	segIdx := int32(len(w.roadSegs))
	w.roadSegs = append(w.roadSegs, roadSegment{a: a, b: b})
	d := b.Sub(a)
	steps := int(d.Norm()/(w.Grid.CellSize/2)) + 1
	last := int32(-1)
	for s := 0; s <= steps; s++ {
		f := float64(s) / float64(steps)
		p := a.Add(d.Scale(f))
		if cx, cy, ok := w.Grid.CellOf(p); ok {
			w.Roads.Set(cx, cy, true)
			idx := int32(cy*w.Grid.NX + cx)
			if idx != last {
				w.bucketSegment(cx, cy, segIdx)
				last = idx
			}
		}
	}
}

// bucketSegment registers seg under the 3x3 neighborhood of (cx, cy).
func (w *World) bucketSegment(cx, cy int, seg int32) {
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx, ny := cx+dx, cy+dy
			if nx < 0 || ny < 0 || nx >= w.Grid.NX || ny >= w.Grid.NY {
				continue
			}
			key := int32(ny*w.Grid.NX + nx)
			list := w.cellSegs[key]
			if n := len(list); n > 0 && list[n-1] == seg {
				continue
			}
			w.cellSegs[key] = append(list, seg)
		}
	}
}

// StateAt returns the geodata.States index of the state containing the
// projected point, or -1 outside the CONUS.
func (w *World) StateAt(p geom.Point) int {
	v, ok := w.StateZone.Sample(p)
	if !ok || v == 0 {
		return -1
	}
	return int(v) - 1
}

// Contains reports whether the projected point lies inside the CONUS
// outline raster.
func (w *World) Contains(p geom.Point) bool {
	cx, cy, ok := w.Grid.CellOf(p)
	return ok && w.Inside.Get(cx, cy)
}

// UrbanAt returns the urban intensity at a projected point (0 off-grid).
func (w *World) UrbanAt(p geom.Point) float64 {
	v, _ := w.Urban.Sample(p)
	return v
}

// RoadDistAt returns the distance in meters to the nearest highway
// centerline (+Inf off-grid). Near corridors the distance is exact
// (computed against the road segments), so fine-resolution WHP windows
// see true narrow corridors; far from roads the cheap raster
// distance-transform value is returned — accurate to within a cell, which
// is all "far" callers need.
func (w *World) RoadDistAt(p geom.Point) float64 {
	v, ok := w.RoadDist.Sample(p)
	if !ok {
		return math.Inf(1)
	}
	if v > 2.5*w.Grid.CellSize {
		return v
	}
	cx, cy, ok := w.Grid.CellOf(p)
	if !ok {
		return v
	}
	best := math.Inf(1)
	// The 3x3 buckets around each road cell guarantee any point within
	// ~1.5 cells of a centerline sees its segment here.
	key := int32(cy*w.Grid.NX + cx)
	for _, si := range w.cellSegs[key] {
		s := w.roadSegs[si]
		if d := geom.DistancePointSegment(p, s.a, s.b); d < best {
			best = d
		}
	}
	if math.IsInf(best, 1) {
		// No bucketed segment (point 1.5-2.5 cells out): scan the wider
		// 5x5 neighborhood before falling back to the raster value.
		for dy := -2; dy <= 2; dy++ {
			for dx := -2; dx <= 2; dx++ {
				key := int32((cy+dy)*w.Grid.NX + (cx + dx))
				if cy+dy < 0 || cx+dx < 0 || cy+dy >= w.Grid.NY || cx+dx >= w.Grid.NX {
					continue
				}
				for _, si := range w.cellSegs[key] {
					s := w.roadSegs[si]
					if d := geom.DistancePointSegment(p, s.a, s.b); d < best {
						best = d
					}
				}
			}
		}
	}
	if math.IsInf(best, 1) {
		return v
	}
	return best
}

// NearestRoadPoint returns the closest point on a road centerline within
// roughly two cells of p, and whether one exists. Used to snap
// road-corridor infrastructure onto the roadway itself.
func (w *World) NearestRoadPoint(p geom.Point) (geom.Point, bool) {
	cx, cy, ok := w.Grid.CellOf(p)
	if !ok {
		return geom.Point{}, false
	}
	best := math.Inf(1)
	var bestPt geom.Point
	for dy := -2; dy <= 2; dy++ {
		for dx := -2; dx <= 2; dx++ {
			nx, ny := cx+dx, cy+dy
			if nx < 0 || ny < 0 || nx >= w.Grid.NX || ny >= w.Grid.NY {
				continue
			}
			for _, si := range w.cellSegs[int32(ny*w.Grid.NX+nx)] {
				s := w.roadSegs[si]
				q := closestOnSegment(p, s.a, s.b)
				if d := p.DistanceTo(q); d < best {
					best = d
					bestPt = q
				}
			}
		}
	}
	return bestPt, !math.IsInf(best, 1)
}

// closestOnSegment projects p onto segment ab, clamped to the endpoints.
func closestOnSegment(p, a, b geom.Point) geom.Point {
	ab := b.Sub(a)
	l2 := ab.Dot(ab)
	if l2 == 0 {
		return a
	}
	t := p.Sub(a).Dot(ab) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return a.Add(ab.Scale(t))
}

// Noise exposes the world's seeded noise field (shared by the WHP model so
// hazard and fuel agree).
func (w *World) Noise() *noise.Field { return w.noiseFld }

// CitiesOfState returns the indices into Cities for the given state index.
func (w *World) CitiesOfState(stateIdx int) []int { return w.cityByIdx[stateIdx] }

// ToXY projects a geographic (lon/lat) point into world coordinates.
func (w *World) ToXY(ll geom.Point) geom.Point { return w.Proj.Forward(ll) }

// ToLonLat unprojects world coordinates to geographic.
func (w *World) ToLonLat(xy geom.Point) geom.Point { return w.Proj.Inverse(xy) }

// StateCentroidXY returns the projected centroid of the i'th state.
func (w *World) StateCentroidXY(i int) geom.Point { return w.statesXY[i] }

// Outline returns the projected CONUS outline polygon.
func (w *World) Outline() geom.Polygon { return w.outline }

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
