package conus

import (
	"math"
	"testing"

	"fivealarms/internal/geom"
)

func TestNearestRoadPointOnCorridor(t *testing.T) {
	w := testWorld
	// Any road cell center must snap to a centerline point within about a
	// cell of itself.
	g := w.Grid
	checked := 0
	for cy := 0; cy < g.NY && checked < 200; cy++ {
		for cx := 0; cx < g.NX && checked < 200; cx++ {
			if !w.Roads.Get(cx, cy) {
				continue
			}
			p := g.Center(cx, cy)
			rp, ok := w.NearestRoadPoint(p)
			if !ok {
				t.Fatalf("road cell (%d,%d) has no nearby centerline", cx, cy)
			}
			if d := p.DistanceTo(rp); d > g.CellSize {
				t.Fatalf("snap distance %v exceeds a cell", d)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no road cells checked")
	}
}

func TestNearestRoadPointFarAway(t *testing.T) {
	w := testWorld
	// Deep in the Nevada basin there is no centerline within two cells.
	p := w.ToXY(geom.Point{X: -116.8, Y: 41.3})
	if _, ok := w.NearestRoadPoint(p); ok {
		t.Error("remote basin point should not snap")
	}
	// Off-grid points never snap.
	if _, ok := w.NearestRoadPoint(geom.Pt(1e12, 1e12)); ok {
		t.Error("off-grid point snapped")
	}
}

func TestRoadDistExactNearCorridor(t *testing.T) {
	w := testWorld
	// Take a city (always on the network) and walk perpendicular-ish
	// offsets: RoadDistAt must be approximately the offset, not the
	// coarse cell-center distance.
	city := w.Cities[0].XY
	rp, ok := w.NearestRoadPoint(city)
	if !ok {
		t.Fatal("city not on network")
	}
	for _, off := range []float64{500, 2000, 8000} {
		p := geom.Point{X: rp.X, Y: rp.Y + off}
		d := w.RoadDistAt(p)
		// The true distance is at most the offset (another segment may
		// pass closer) and the sub-cell precision must beat the raster
		// quantization.
		if d > off+1 {
			t.Errorf("offset %v: road distance %v exceeds offset", off, d)
		}
	}
	// Exactly on the centerline: ~0.
	if d := w.RoadDistAt(rp); d > 1 {
		t.Errorf("on-centerline distance = %v", d)
	}
}

func TestRoadDistFarUsesRaster(t *testing.T) {
	w := testWorld
	p := w.ToXY(geom.Point{X: -116.8, Y: 41.3})
	d := w.RoadDistAt(p)
	if math.IsInf(d, 1) || d < 2*w.Grid.CellSize {
		t.Errorf("remote distance = %v, want large finite", d)
	}
}
