package fivealarms

// Fault containment for the sharded build path: every sharded task —
// the season simulations, the partition plan, each per-shard overlay
// and mask, the stream merge — is chaos-tested with injected errors and
// panics under both schedules. A failed shard must skip its dependents
// and fail the build; a partial sharded Study never escapes, and no
// goroutine leaks.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"fivealarms/internal/faults"
	"fivealarms/internal/pipeline"
)

const chaosShards = 3

// shardedTaskNames discovers the sharded build graph's task list with a
// recording hook (same discovery pattern as buildTaskNames) and keeps
// only the tasks the sharded path adds.
func shardedTaskNames(t *testing.T) []string {
	t.Helper()
	var names []string
	installHook(t, func(task string) error {
		names = append(names, task)
		return nil
	})
	if _, err := NewStudyWithOptions(chaosOptions(true, WithShards(chaosShards))...); err != nil {
		t.Fatal(err)
	}
	buildFaultHook = nil
	var sharded []string
	for _, n := range names {
		if strings.HasPrefix(n, "shard") || n == "history" || n == "season2019" {
			sharded = append(sharded, n)
		}
	}
	// 2 simulations + plan + merge + overlay/mask per shard.
	if want := 4 + 2*chaosShards; len(sharded) != want {
		t.Fatalf("discovered %d sharded tasks %v, want %d", len(sharded), sharded, want)
	}
	return sharded
}

// TestShardedChaosPanicEveryTask injects a panic into every sharded
// task, one at a time, in both schedules: the build must surface a
// pipeline.PanicError naming the task, return a nil Study, and leak no
// goroutines.
func TestShardedChaosPanicEveryTask(t *testing.T) {
	names := shardedTaskNames(t)
	for _, serial := range []bool{false, true} {
		for _, victim := range names {
			time.Sleep(time.Millisecond)
			before := runtime.NumGoroutine()
			in := faults.New(1)
			in.PanicOn(victim, nil)
			installHook(t, in.Hook())
			s, err := NewStudyWithOptions(chaosOptions(serial, WithShards(chaosShards))...)
			if s != nil {
				t.Fatalf("serial=%v victim=%s: partially built sharded Study escaped", serial, victim)
			}
			var pe *pipeline.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("serial=%v victim=%s: err = %v, want pipeline.PanicError", serial, victim, err)
			}
			if pe.Task != victim {
				t.Errorf("serial=%v victim=%s: PanicError.Task = %q", serial, victim, pe.Task)
			}
			studyAssertNoGoroutineLeak(t, before)
		}
	}
}

// TestShardedChaosErrorEveryTask injects a plain error into every
// sharded task: the injected sentinel must survive the wrap chain and
// the error must name the failed task.
func TestShardedChaosErrorEveryTask(t *testing.T) {
	names := shardedTaskNames(t)
	for _, serial := range []bool{false, true} {
		for _, victim := range names {
			in := faults.New(1)
			in.ErrorOn(victim, nil)
			installHook(t, in.Hook())
			s, err := NewStudyWithOptions(chaosOptions(serial, WithShards(chaosShards))...)
			if s != nil || err == nil {
				t.Fatalf("serial=%v victim=%s: s=%v err=%v", serial, victim, s != nil, err)
			}
			if !errors.Is(err, faults.ErrInjected) {
				t.Errorf("serial=%v victim=%s: injected sentinel lost: %v", serial, victim, err)
			}
			if !strings.Contains(err.Error(), `"`+victim+`"`) {
				t.Errorf("serial=%v victim=%s: error does not name the task: %v", serial, victim, err)
			}
		}
	}
}

// TestShardedChaosUpstreamFailureSkipsShards: a failure in an upstream
// layer (the transceiver snapshot) must skip every shard task — the
// per-shard builders must never run against missing inputs.
func TestShardedChaosUpstreamFailureSkipsShards(t *testing.T) {
	for _, serial := range []bool{false, true} {
		var mu sync.Mutex
		var ran []string
		in := faults.New(1)
		in.ErrorOn("cellnet", nil)
		inner := in.Hook()
		installHook(t, func(task string) error {
			mu.Lock()
			ran = append(ran, task)
			mu.Unlock()
			return inner(task)
		})
		s, err := NewStudyWithOptions(chaosOptions(serial, WithShards(chaosShards))...)
		if s != nil || !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("serial=%v: s=%v err=%v", serial, s != nil, err)
		}
		mu.Lock() // the graph run has joined; lock for the race detector's sake
		for _, task := range ran {
			if strings.HasPrefix(task, "shard") {
				t.Errorf("serial=%v: task %q ran despite its failed upstream", serial, task)
			}
		}
		mu.Unlock()
	}
}

// TestShardedBuildCancellation: a context cancelled while the sharded
// graph runs stops scheduling, surfaces ctx.Err(), and returns a nil
// Study in both schedules.
func TestShardedBuildCancellation(t *testing.T) {
	for _, serial := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		installHook(t, func(task string) error {
			if task == "shards/plan" {
				cancel()
			}
			return nil
		})
		s, err := NewStudyWithOptions(chaosOptions(serial, WithShards(chaosShards), WithContext(ctx))...)
		if s != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("serial=%v: s=%v err=%v", serial, s != nil, err)
		}
		buildFaultHook = nil
		cancel()
	}
}

// TestShardedChaosCleanRunIdentical: an inert chaos harness on the
// sharded graph must not perturb results relative to the monolithic
// uninstrumented build.
func TestShardedChaosCleanRunIdentical(t *testing.T) {
	in := faults.New(5) // no rules: fires nothing
	installHook(t, in.Hook())
	instrumented, err := NewStudyWithOptions(chaosOptions(false, WithShards(chaosShards))...)
	if err != nil {
		t.Fatal(err)
	}
	buildFaultHook = nil
	clean := NewStudy(stressCfg)
	a, b := analysisFingerprints(instrumented), analysisFingerprints(clean)
	for name, want := range b {
		if a[name] != want {
			t.Errorf("%s differs with inert chaos harness on the sharded graph", name)
		}
	}
	if len(in.Events()) != 0 {
		t.Errorf("inert injector fired: %v", in.Events())
	}
}
