package fivealarms

import (
	"context"
	"fmt"
	"unsafe"

	"fivealarms/internal/cellnet"
	"fivealarms/internal/pipeline"
	"fivealarms/internal/raster"
	"fivealarms/internal/risk"
	"fivealarms/internal/shard"
	"fivealarms/internal/wildfire"
)

// Sharded execution (Config.Shards > 0): the transceiver-axis products
// — Table 1/2/3, the §3.4 validation and the two perimeter union masks
// — are computed shard by shard over a row-band partition of the CONUS
// grid and stream-merged, instead of in one pass over the whole fleet.
// The results are bit-identical to the monolithic build (see DESIGN.md
// §10 for the merge-order determinism rule and the exactness argument);
// what changes is the working-set shape: each shard task materializes
// only its band's slice of the fleet as analysis-ready AoS rows plus
// two band masks, so the transient per-shard footprint is bounded by
// the largest band rather than the fleet, and the compact columnar
// Store is the only fleet-wide transceiver container the heavy joins
// ever touch.

// shardedResults holds the stream-merged products of a sharded build.
// Built entirely inside build()'s task graph; immutable afterwards.
type shardedResults struct {
	history    []*wildfire.Season
	season2019 *wildfire.Season
	table1     []risk.YearOverlay
	table2     []risk.ProviderRow
	table3     []risk.RadioRow
	validation *risk.ValidationResult
	unionHist  *raster.BitGrid
	union2019  *raster.BitGrid

	// shardRows is the per-shard transceiver count, in band order.
	shardRows []int
	// peakShardBytes is the largest single shard's accounted transient
	// footprint: AoS rows + spatial index + class/county caches + two
	// band masks (an accounting figure, not measured RSS; see
	// DESIGN.md §10).
	peakShardBytes int64
}

// shardBuild carries the sharded tasks' intermediate state. Tasks
// communicate only through their dependency edges: a field is written
// by exactly one task and read only by tasks downstream of it, so the
// pipeline's happens-before edges make the builds race-free under any
// schedule.
type shardBuild struct {
	s   *Study
	cfg Config

	plan  shard.Plan
	store *cellnet.Store
	parts [][]int

	overlays  []*risk.ShardOverlay
	histMasks []*raster.BitGrid
	valMasks  []*raster.BitGrid
	bytes     []int64

	res shardedResults
}

// joinWorkers resolves the intra-shard join parallelism: serial builds
// join serially; parallel builds let the per-season worker pool size
// itself (the shards are already scheduled across the graph executor).
func (sb *shardBuild) joinWorkers() int {
	if sb.cfg.PipelineSerial {
		return 1
	}
	return 0
}

// addShardedTasks appends the sharded layer builds to the study graph:
// the simulated seasons, the partition plan, one overlay task and one
// mask task per shard, and the stream merge. Dependencies ensure a
// failed or cancelled task skips every dependent, so a partial sharded
// Study never escapes build().
func addShardedTasks(g *pipeline.Graph, sb *shardBuild, ctx context.Context) {
	cfg := sb.cfg
	n := cfg.Shards
	sb.overlays = make([]*risk.ShardOverlay, n)
	sb.histMasks = make([]*raster.BitGrid, n)
	sb.valMasks = make([]*raster.BitGrid, n)
	sb.bytes = make([]int64, n)

	g.Add("history", func() error {
		workers := 0
		if cfg.PipelineSerial {
			workers = 1
		}
		seasons, err := wildfire.SimulateHistoryContext(ctx, sb.s.Sim, cfg.Seed, cfg.MappedFiresPerSeason, workers)
		if err != nil {
			return err
		}
		sb.res.history = seasons
		return nil
	}, "sim")
	g.Add("season2019", func() error {
		sb.res.season2019 = wildfire.Simulate2019(sb.s.Sim, cfg.Seed, cfg.MappedFiresPerSeason)
		return nil
	}, "sim")
	g.Add("shards/plan", func() error {
		sb.plan = shard.MakePlan(sb.s.World.Grid.NY, n)
		sb.store = cellnet.StoreOf(sb.s.Data.T)
		parts, err := shard.Partition(sb.plan, sb.s.World.Grid, sb.store.Y)
		if err != nil {
			return err
		}
		sb.parts = parts
		return nil
	}, "analyzer")

	shardTasks := make([]string, 0, 2*n)
	for i := 0; i < n; i++ {
		overlayTask := fmt.Sprintf("shard%d/overlay", i)
		maskTask := fmt.Sprintf("shard%d/mask", i)
		shardTasks = append(shardTasks, overlayTask, maskTask)
		g.Add(overlayTask, func() error {
			sb.runOverlay(i)
			return nil
		}, "shards/plan", "history", "season2019")
		g.Add(maskTask, func() error {
			sb.runMask(i)
			return nil
		}, "shards/plan", "history", "season2019")
	}
	g.Add("shards/merge", sb.merge, shardTasks...)
}

// aosRowBytes is the in-memory size of one analysis-ready transceiver
// row — the unit of the per-shard footprint accounting.
const aosRowBytes = int64(unsafe.Sizeof(cellnet.Transceiver{}))

// indexAndCacheBytes accounts the per-row cost of a shard's spatial
// index (one projected point) plus the analyzer's class and county
// caches.
const indexAndCacheBytes = int64(16 + 1 + 4)

// runOverlay materializes shard i's rows from the columnar store,
// builds its private analyzer, and counts its partial Table 1/2/3 and
// validation products. The AoS rows, index and caches are released
// when the task returns — only the counts survive.
func (sb *shardBuild) runOverlay(i int) {
	idx := sb.parts[i]
	rows := sb.store.AppendRows(make([]cellnet.Transceiver, 0, len(idx)), idx)
	ds := cellnet.NewDataset(sb.s.World, rows)
	sub := risk.New(sb.s.World, sb.s.WHP, ds, sb.s.Counties)
	sb.overlays[i] = sub.ShardOverlay(sb.res.history, sb.res.season2019, sb.joinWorkers())
	sb.bytes[i] = int64(len(idx)) * (aosRowBytes + indexAndCacheBytes)
}

// runMask fills shard i's band of the two perimeter union masks. The
// fills are row-window-restricted, so a band mask holds exactly the
// rows the monolithic fill would produce there and zero elsewhere;
// the band-ordered Or in merge reassembles the monolithic masks bit
// for bit.
func (sb *shardBuild) runMask(i int) {
	y0, y1 := sb.plan.Band(i)
	g := sb.s.World.Grid
	hist := raster.NewBitGrid(g)
	val := raster.NewBitGrid(g)
	raster.FillPolygonsRows(hist, risk.SeasonPerimeters(sb.res.history), y0, y1)
	raster.FillPolygonsRows(val, risk.SeasonPerimeters([]*wildfire.Season{sb.res.season2019}), y0, y1)
	sb.histMasks[i] = hist
	sb.valMasks[i] = val
}

// maskBytes accounts one full-geometry bit mask.
func maskBytes(g raster.Geometry) int64 {
	return int64((g.Cells()+63)/64) * 8
}

// merge folds the per-shard products, in band order, into the final
// sharded results. Integer counts add; ratios are recomputed once from
// the merged counts; masks merge by word-level Or. Merge order is
// fixed (band 0 upward) even though every merge here is commutative —
// the determinism rule is "band order, always" so no future merge has
// to re-litigate it.
func (sb *shardBuild) merge() error {
	t1, t2, t3, v, err := risk.MergeShardOverlays(sb.overlays)
	if err != nil {
		return err
	}
	sb.res.table1, sb.res.table2, sb.res.table3, sb.res.validation = t1, t2, t3, v

	g := sb.s.World.Grid
	unionHist := raster.NewBitGrid(g)
	union2019 := raster.NewBitGrid(g)
	for i := range sb.histMasks {
		if err := unionHist.Or(sb.histMasks[i]); err != nil {
			return fmt.Errorf("merging shard %d history mask: %w", i, err)
		}
		if err := union2019.Or(sb.valMasks[i]); err != nil {
			return fmt.Errorf("merging shard %d 2019 mask: %w", i, err)
		}
		sb.histMasks[i], sb.valMasks[i] = nil, nil // release band masks as they fold in
	}
	sb.res.unionHist, sb.res.union2019 = unionHist, union2019

	sb.res.shardRows = make([]int, len(sb.parts))
	mb := 2 * maskBytes(g)
	for i, part := range sb.parts {
		sb.res.shardRows[i] = len(part)
		if b := sb.bytes[i] + mb; b > sb.res.peakShardBytes {
			sb.res.peakShardBytes = b
		}
	}
	return nil
}

// ShardStats reports the sharded build's shape: per-shard transceiver
// counts in band order and the accounted peak per-shard transient
// footprint in bytes. A monolithic study returns (nil, 0).
func (s *Study) ShardStats() (rows []int, peakBytes int64) {
	if s.sharded == nil {
		return nil, 0
	}
	rows = append([]int(nil), s.sharded.shardRows...)
	return rows, s.sharded.peakShardBytes
}
