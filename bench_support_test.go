package fivealarms

import (
	"fivealarms/internal/geom"
	"fivealarms/internal/grid"
)

// newGridIndex builds a point index whose cell size is scaled by factor
// relative to the auto-tuned default — support for the grid-cell-size
// ablation benchmark.
func newGridIndex(pts []geom.Point, factor float64) *grid.Index {
	auto := grid.New(pts, 0)
	return grid.New(pts, auto.CellSize()*factor)
}
