// Provider risk: reproduce the paper's Table 2/Table 3 analysis — which
// cellular providers and radio technologies carry the most wildfire-
// exposed infrastructure — and demonstrate the MCC/MNC resolution the
// paper describes in §3.5.
//
// Run with:
//
//	go run ./examples/provider-risk
package main

import (
	"fmt"
	"os"

	"fivealarms"
	"fivealarms/internal/report"
	"fivealarms/internal/serve/api"
)

func main() {
	study, err := fivealarms.NewStudyWithOptions(
		fivealarms.WithSeed(7),
		fivealarms.WithCellSizeM(15000),
		fivealarms.WithTransceivers(80000),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Table 2: per-provider exposure. The engine resolves each
	// transceiver's provider from its MCC/MNC pair — the same
	// many-codes-per-carrier problem the paper describes.
	fmt.Println(report.Table2(api.Table2From(study.Table2())))

	// Table 3: per-technology exposure.
	fmt.Println(report.Table3(api.Table3From(study.Table3())))

	// The long tail: regional carriers with at-risk infrastructure (the
	// paper's footnote counts 46).
	regional := study.Analyzer.RegionalProvidersAtRisk()
	fmt.Printf("regional providers with at-risk infrastructure: %d\n", len(regional))
	for i, p := range regional {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", len(regional)-8)
			break
		}
		fmt.Printf("  - %s\n", p)
	}

	// Machine-readable output for downstream tooling.
	f, err := os.CreateTemp("", "provider-risk-*.csv")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := report.Table2(api.Table2From(study.Table2())).WriteCSV(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote CSV to %s\n", f.Name())
}
