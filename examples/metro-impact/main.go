// Metro impact: reproduce the paper's §3.6-§3.7 population-impact
// analysis — cross the WHP exposure with county population density,
// rank metro areas by at-risk infrastructure, and drill into the
// Figure 13 detail windows.
//
// Run with:
//
//	go run ./examples/metro-impact
package main

import (
	"fmt"
	"os"

	"fivealarms"
	"fivealarms/internal/geom"
	"fivealarms/internal/report"
	"fivealarms/internal/whp"
)

func main() {
	study, err := fivealarms.NewStudyWithOptions(
		fivealarms.WithSeed(5),
		fivealarms.WithCellSizeM(15000),
		fivealarms.WithTransceivers(100000),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Figure 10: the WHP x county-density matrix.
	impact := study.Impact()
	fmt.Println(report.Fig10(impact))
	fmt.Printf("at-risk transceivers in counties over 1.5M people: %d (paper: 57,504)\n\n",
		impact.VeryDenseTotal())

	// Figure 12: the metro ranking.
	fmt.Println(report.Fig12(study.Metros()))

	// Figure 13: detail windows around the paper's three map panels.
	windows := []struct {
		name   string
		anchor geom.Point
		radius float64
	}{
		{"San Francisco / Sacramento", geom.Point{X: -121.8, Y: 38.2}, 150000},
		{"Los Angeles / San Diego", geom.Point{X: -117.6, Y: 33.5}, 150000},
		{"Orlando / central Florida", geom.Point{X: -81.4, Y: 28.5}, 120000},
	}
	fmt.Println("Figure 13 detail windows:")
	for _, w := range windows {
		counts := study.Analyzer.MetroWindowCount(w.anchor, w.radius)
		fmt.Printf("  %-28s moderate %5d  high %5d  very-high %4d\n",
			w.name, counts[whp.Moderate], counts[whp.High], counts[whp.VeryHigh])
	}
	fmt.Println("\nthe WUI gradient: risk rises from the urban core into the wildland —")
	sac := geom.Point{X: -121.494, Y: 38.582}
	for _, km := range []float64{0, 30, 60, 90} {
		// March east from downtown Sacramento into the Sierra foothills.
		p := geom.Point{X: sac.X + km/88, Y: sac.Y + km/500}
		xy := study.World.ToXY(p)
		fmt.Printf("  %3.0f km east of Sacramento: hazard %.3f (%v)\n",
			km, study.WHP.HazardAt(xy), study.WHP.ClassAt(xy))
	}
}
