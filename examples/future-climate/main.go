// Future climate: reproduce the paper's §3.9 analysis — project the
// Littell et al. ecoregion changes in wildfire activity onto the cellular
// infrastructure of the Salt Lake City - Denver corridor (Figures 14-15),
// and rank states by HOT escape probability (§3.11 extension).
//
// Run with:
//
//	go run ./examples/future-climate
package main

import (
	"fmt"
	"os"

	"fivealarms"
	"fivealarms/internal/report"
	"fivealarms/internal/whp"
)

func main() {
	study, err := fivealarms.NewStudyWithOptions(
		fivealarms.WithSeed(13),
		fivealarms.WithCellSizeM(15000),
		fivealarms.WithTransceivers(80000),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Figure 14: the corridor projection.
	future := study.Future()
	fmt.Println(report.Fig14(future))
	fmt.Printf("corridor transceivers: %d (%d outside mapped ecoregion zones)\n\n",
		future.CorridorTransceivers, future.OutsideZones)

	// Figure 15: the corridor's current WHP profile.
	counts := study.Analyzer.CorridorWHPCounts(study.Corridor())
	fmt.Println("current corridor WHP profile:")
	for _, c := range []whp.Class{whp.NonBurnable, whp.VeryLow, whp.Low, whp.Moderate, whp.High, whp.VeryHigh} {
		fmt.Printf("  %-12s %6d\n", c, counts[c])
	}

	// The headline contrast the paper draws: some regions +240%, one
	// declining.
	var grow, shrink string
	for _, r := range future.Rows {
		if r.DeltaPct == 240 && grow == "" && r.Transceivers > 0 {
			grow = fmt.Sprintf("%s: %d transceivers, mean hazard %.3f -> %.3f",
				r.Ecoregion, r.Transceivers, r.MeanHazardNow, r.MeanHazardFuture)
		}
		if r.DeltaPct < 0 {
			shrink = fmt.Sprintf("%s: %d transceivers, mean hazard %.3f -> %.3f",
				r.Ecoregion, r.Transceivers, r.MeanHazardNow, r.MeanHazardFuture)
		}
	}
	fmt.Println("\nfastest-growing ecoregion: ", grow)
	fmt.Println("declining ecoregion:       ", shrink)

	// §3.11 extension: regionalized escape probabilities from the HOT
	// suppression-allocation model.
	fmt.Println("\nHOT escape probabilities (top 10 states):")
	for i, r := range study.Escape(0) {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-2s escape %.1f%%  (at-risk transceivers: %d)\n",
			r.Abbrev, 100*r.Escape, r.AtRiskTransceivers)
	}
}
