// PSPS case study: reproduce the paper's §3.2 analysis of the fall-2019
// California public-safety power shutoffs — simulate the event over a
// synthetic power network, emit FCC DIRS-style reports, print the
// Figure 5 outage series, and sweep the backup-power mitigation lever.
//
// Run with:
//
//	go run ./examples/psps-casestudy
package main

import (
	"fmt"
	"os"

	"fivealarms"
	"fivealarms/internal/report"
)

func main() {
	study, err := fivealarms.NewStudyWithOptions(
		fivealarms.WithSeed(11),
		fivealarms.WithCellSizeM(15000),
		fivealarms.WithTransceivers(80000),
		fivealarms.WithFiresPerSeason(30),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cs := study.CaseStudy()
	fmt.Println(report.CaseStudy(cs))
	fmt.Println(report.Fig5(cs.Series))

	// Figure 5 as a bar chart, like the paper's stacked bars.
	totals := make([]int, len(cs.Series.Damage))
	for d := range totals {
		totals[d] = cs.Series.Total(d)
	}
	fmt.Println(report.BarChart("sites out of service per day",
		cs.Series.Labels, totals, 48))

	// The paper's key observation: power loss dominates. Quantify the
	// mitigation lever — what multi-day backup power would have done.
	fmt.Println("backup-power mitigation sweep (section 3.10):")
	season := study.Season2019()
	for _, p := range study.Analyzer.MitigationSweep(season, []float64{4, 8, 24, 48, 72}, 11) {
		fmt.Printf("  %5.0f h batteries -> peak %4d sites out (%4d from power loss)\n",
			p.MeanBatteryHours, p.PeakOut, p.PeakPowerOut)
	}
}
