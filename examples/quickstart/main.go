// Quickstart: build a small synthetic study and print the headline
// result — how much cellular infrastructure sits in wildfire-hazard
// areas, and which states carry the most of it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"fivealarms"
	"fivealarms/internal/whp"
)

func main() {
	// A laptop-scale study: ~60k transceivers on a 15 km national raster.
	// The same seed always produces the same world and the same numbers.
	study, err := fivealarms.NewStudyWithOptions(
		fivealarms.WithSeed(42),
		fivealarms.WithCellSizeM(15000),
		fivealarms.WithTransceivers(60000),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	overlay := study.WHPOverlay()
	fmt.Printf("synthetic OpenCelliD snapshot: %d transceivers\n", study.Data.Len())
	fmt.Printf("in moderate hazard:  %d\n", overlay.ByClass[whp.Moderate])
	fmt.Printf("in high hazard:      %d\n", overlay.ByClass[whp.High])
	fmt.Printf("in very-high hazard: %d\n", overlay.ByClass[whp.VeryHigh])
	fmt.Printf("total at risk:       %d (%.1f%% of the fleet)\n\n",
		overlay.AtRisk(), 100*float64(overlay.AtRisk())/float64(overlay.Total))

	fmt.Println("states with the most at-risk transceivers:")
	for i, sc := range overlay.TopStatesAtRisk() {
		if i >= 7 {
			break
		}
		fmt.Printf("  %d. %-2s %6d\n", i+1, sc.Abbrev, sc.Count)
	}

	fmt.Println("\nper-capita very-high exposure (per 1000 residents):")
	for i, sc := range overlay.PerCapita(whp.VeryHigh) {
		if i >= 5 {
			break
		}
		fmt.Printf("  %d. %-2s %.3f\n", i+1, sc.Abbrev, sc.PerThousand)
	}
}
