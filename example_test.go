package fivealarms_test

import (
	"fmt"

	"fivealarms"
	"fivealarms/internal/whp"
)

// The quickstart: build a small world and ask the headline question.
func ExampleNewStudy() {
	study := fivealarms.NewStudy(fivealarms.Config{
		Seed:         42,
		CellSizeM:    40000, // coarse grid: fast enough for documentation
		Transceivers: 5000,
	})
	overlay := study.WHPOverlay()
	// The structural result is stable even at toy scale: moderate
	// exposure outweighs high outweighs very-high.
	fmt.Println(overlay.ByClass[whp.Moderate] > overlay.ByClass[whp.High])
	fmt.Println(overlay.ByClass[whp.High] > overlay.ByClass[whp.VeryHigh])
	// Output:
	// true
	// true
}

// The validating constructor: functional options instead of a Config
// literal, with malformed configurations rejected instead of silently
// clamped. The returned Study memoizes its derived layers and is safe
// for concurrent use.
func ExampleNewStudyWithOptions() {
	study, err := fivealarms.NewStudyWithOptions(
		fivealarms.WithSeed(42),
		fivealarms.WithCellSizeM(40000),
		fivealarms.WithTransceivers(5000),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	overlay := study.WHPOverlay()
	fmt.Println(overlay.AtRisk() > 0)

	// A negative raster resolution is an error, not a silent default.
	_, err = fivealarms.NewStudyWithOptions(fivealarms.WithCellSizeM(-1))
	fmt.Println(err != nil)
	// Output:
	// true
	// true
}

// Reproducing Table 2: who operates the most at-risk infrastructure.
func ExampleStudy_Table2() {
	study := fivealarms.NewStudy(fivealarms.Config{
		Seed: 42, CellSizeM: 40000, Transceivers: 5000,
	})
	rows := study.Table2()
	fmt.Println(rows[0].Provider) // the paper's Table 2 leads with AT&T
	// Output:
	// AT&T
}

// Simulating the fall-2019 PSPS event (Figure 5).
func ExampleStudy_CaseStudy() {
	study := fivealarms.NewStudy(fivealarms.Config{
		Seed: 42, CellSizeM: 40000, Transceivers: 5000, MappedFiresPerSeason: 5,
	})
	cs := study.CaseStudy()
	// The event peaks on the fourth reporting day, 28 October.
	fmt.Println(cs.Series.Labels[cs.PeakDay])
	// Output:
	// Oct 28
}
