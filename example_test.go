package fivealarms_test

import (
	"fmt"

	"fivealarms"
	"fivealarms/internal/whp"
)

// The quickstart: build a small world and ask the headline question.
func ExampleNewStudy() {
	study := fivealarms.NewStudy(fivealarms.Config{
		Seed:         42,
		CellSizeM:    40000, // coarse grid: fast enough for documentation
		Transceivers: 5000,
	})
	overlay := study.WHPOverlay()
	// The structural result is stable even at toy scale: moderate
	// exposure outweighs high outweighs very-high.
	fmt.Println(overlay.ByClass[whp.Moderate] > overlay.ByClass[whp.High])
	fmt.Println(overlay.ByClass[whp.High] > overlay.ByClass[whp.VeryHigh])
	// Output:
	// true
	// true
}

// Reproducing Table 2: who operates the most at-risk infrastructure.
func ExampleStudy_Table2() {
	study := fivealarms.NewStudy(fivealarms.Config{
		Seed: 42, CellSizeM: 40000, Transceivers: 5000,
	})
	rows := study.Table2()
	fmt.Println(rows[0].Provider) // the paper's Table 2 leads with AT&T
	// Output:
	// AT&T
}

// Simulating the fall-2019 PSPS event (Figure 5).
func ExampleStudy_CaseStudy() {
	study := fivealarms.NewStudy(fivealarms.Config{
		Seed: 42, CellSizeM: 40000, Transceivers: 5000, MappedFiresPerSeason: 5,
	})
	cs := study.CaseStudy()
	// The event peaks on the fourth reporting day, 28 October.
	fmt.Println(cs.Series.Labels[cs.PeakDay])
	// Output:
	// Oct 28
}
