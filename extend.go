package fivealarms

import "fivealarms/internal/risk"

// ExtendOptions parameterizes the §3.8 very-high extension experiment
// behind the unified ExtendWith entry point.
type ExtendOptions struct {
	// CellSizeM selects the analysis raster. 0 keeps the study's shared
	// national raster (the coarse path). A positive value finer than the
	// national raster rebuilds the WHP at that resolution over the
	// California validation window (the fine path) — the paper's own
	// setup, since an 804 m buffer cannot grow on a 10 km raster.
	CellSizeM float64
	// DistM is the very-high dilation distance in meters. 0 selects the
	// paper's half mile (804.67 m) on the fine path; on the coarse path
	// the default is max(half mile, one raster cell) so the buffer can
	// grow at all.
	DistM float64
}

// ExtendReport is the unified result of ExtendWith: the headline
// before/after numbers plus whichever underlying result the selected
// path produced (exactly one of Coarse or Window is non-nil).
type ExtendReport struct {
	// Fine reports which path ran (see ExtendOptions.CellSizeM).
	Fine bool
	// CellSizeM and DistM echo the resolved parameters.
	CellSizeM, DistM float64
	// VHBefore and VHAfter count very-high transceivers before and after
	// the dilation (window-scoped on the fine path).
	VHBefore, VHAfter int
	// AccuracyBeforePct and AccuracyAfterPct are the validation hit
	// rates against the 2019 hold-out season.
	AccuracyBeforePct, AccuracyAfterPct float64
	// Coarse is the national-raster result (coarse path only).
	Coarse *risk.ExtensionResult
	// Window is the California-window result (fine path only).
	Window *risk.FineExtension
}

// ExtendWith runs the §3.8 experiment through one entry point, selecting
// between the coarse national raster and the fine California window.
//
// Selection rule: opts.CellSizeM == 0 (or >= the study's raster cell)
// runs the coarse path on the shared national raster — cheap, but the
// effective buffer is bounded below by one raster cell. A positive
// opts.CellSizeM finer than the national raster runs the fine path: the
// WHP is rebuilt at that resolution over the California window, which
// can express the paper's true half-mile buffer (the paper's 46% -> 62%
// accuracy experiment). Both paths memoize per parameter set, so
// repeated calls are cache hits.
func (s *Study) ExtendWith(opts ExtendOptions) *ExtendReport {
	coarseCell := s.World.Grid.CellSize
	if opts.CellSizeM > 0 && opts.CellSizeM < coarseCell {
		res := s.extendFine(opts.CellSizeM, opts.DistM)
		return &ExtendReport{
			Fine:              true,
			CellSizeM:         res.CellSize,
			DistM:             res.DistM,
			VHBefore:          res.VHBefore,
			VHAfter:           res.VHAfter,
			AccuracyBeforePct: res.AccuracyBeforePct(),
			AccuracyAfterPct:  res.AccuracyAfterPct(),
			Window:            res,
		}
	}
	dist := opts.DistM
	if dist <= 0 {
		dist = 804.67
		if dist < coarseCell {
			dist = coarseCell
		}
	}
	res := s.extendCoarse(dist)
	return &ExtendReport{
		CellSizeM:         coarseCell,
		DistM:             res.DistM,
		VHBefore:          res.VHBefore,
		VHAfter:           res.VHAfter,
		AccuracyBeforePct: res.Before.AccuracyPct(),
		AccuracyAfterPct:  res.After.AccuracyPct(),
		Coarse:            res,
	}
}
