package fivealarms

// Option mutates a Config under NewStudyWithOptions. Options compose
// left to right; a later option overrides an earlier one for the same
// field.
type Option func(*Config)

// WithSeed sets the master random seed (Config.Seed).
func WithSeed(seed uint64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithCellSizeM sets the world raster resolution in meters
// (Config.CellSizeM).
func WithCellSizeM(m float64) Option {
	return func(c *Config) { c.CellSizeM = m }
}

// WithTransceivers sets the synthetic OpenCelliD snapshot size
// (Config.Transceivers).
func WithTransceivers(n int) Option {
	return func(c *Config) { c.Transceivers = n }
}

// WithFiresPerSeason sets the mapped-fire simulation budget per season
// (Config.MappedFiresPerSeason).
func WithFiresPerSeason(n int) Option {
	return func(c *Config) { c.MappedFiresPerSeason = n }
}

// WithConfig replaces the whole configuration at once; options placed
// after it adjust individual fields. Useful for starting from
// PaperScale.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithSerialPipeline forces the serial build and simulation path
// (Config.PipelineSerial): layers build one at a time and the historical
// seasons simulate sequentially. Results are bit-identical to the
// default parallel pipeline; this is a debugging escape hatch.
func WithSerialPipeline() Option {
	return func(c *Config) { c.PipelineSerial = true }
}

// NewStudyWithOptions validates the assembled configuration and builds
// all layers through the parallel pipeline (see Config.PipelineSerial
// for the serial escape hatch). Unlike NewStudy, it rejects malformed
// configurations — negative or non-finite dimensions, absurd sizes —
// instead of silently clamping them.
func NewStudyWithOptions(opts ...Option) (*Study, error) {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return build(cfg.withDefaults()), nil
}
