package fivealarms

import "context"

// Option mutates a Config under NewStudyWithOptions.
//
// Ordering semantics (the single source of truth for every option):
// options apply strictly left to right. A field option (WithSeed,
// WithCellSizeM, WithTransceivers, WithFiresPerSeason,
// WithRasterWorkers, WithSerialPipeline, WithContext) overrides that one field of
// whatever the earlier options assembled. A whole-config option
// (WithConfig, WithPaperScale) replaces the entire configuration —
// including clearing a context installed by an earlier WithContext —
// so place it first and adjust individual fields after it:
//
//	NewStudyWithOptions(fivealarms.WithPaperScale(42),
//	    fivealarms.WithTransceivers(1_000_000)) // paper scale, smaller snapshot
type Option func(*Config)

// WithContext attaches ctx to the study build. Cancelling it (or hitting
// its deadline) stops the layer pipeline from scheduling new build tasks,
// drains the tasks already in flight, and makes NewStudyWithOptions
// return an error wrapping ctx.Err() together with how far the build
// got. The context governs only the build: the returned Study never
// retains it, and a Study that builds successfully is unaffected by a
// later cancellation. WithConfig placed after this option clears it.
func WithContext(ctx context.Context) Option {
	return func(c *Config) { c.ctx = ctx }
}

// WithSeed sets the master random seed (Config.Seed).
func WithSeed(seed uint64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithCellSizeM sets the world raster resolution in meters
// (Config.CellSizeM).
func WithCellSizeM(m float64) Option {
	return func(c *Config) { c.CellSizeM = m }
}

// WithTransceivers sets the synthetic OpenCelliD snapshot size
// (Config.Transceivers).
func WithTransceivers(n int) Option {
	return func(c *Config) { c.Transceivers = n }
}

// WithFiresPerSeason sets the mapped-fire simulation budget per season
// (Config.MappedFiresPerSeason).
func WithFiresPerSeason(n int) Option {
	return func(c *Config) { c.MappedFiresPerSeason = n }
}

// WithConfig replaces the whole configuration at once; options placed
// after it adjust individual fields (see Option for the ordering
// semantics).
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithPaperScale replaces the whole configuration with PaperScale(seed)
// — the paper's actual data volumes: a 5.36M-transceiver snapshot on a
// 2.7 km national raster (several GB of memory, minutes of generation).
// Like WithConfig it is a whole-config option: place it first and
// adjust individual fields with later options (see Option).
func WithPaperScale(seed uint64) Option {
	return func(c *Config) { *c = PaperScale(seed) }
}

// WithRasterWorkers bounds the parallelism of the tiled raster kernels
// (Config.RasterWorkers): perimeter-union fills, distance transforms,
// dilations and contour tracing. 0 selects GOMAXPROCS (or serial under
// WithSerialPipeline), 1 forces the serial kernels. Results are
// bit-identical at any setting.
func WithRasterWorkers(n int) Option {
	return func(c *Config) { c.RasterWorkers = n }
}

// WithSerialPipeline forces the serial build and simulation path
// (Config.PipelineSerial): layers build one at a time and the historical
// seasons simulate sequentially. Results are bit-identical to the
// default parallel pipeline; this is a debugging escape hatch.
func WithSerialPipeline() Option {
	return func(c *Config) { c.PipelineSerial = true }
}

// WithShards selects the sharded execution path (Config.Shards): the
// transceiver-axis analyses — Tables 1-3, the hold-out validation, the
// perimeter union masks — compute over n CONUS row bands with a bounded
// per-shard transient footprint and stream-merge in band order. Results
// are bit-identical to the monolithic build at any shard count (see
// DESIGN.md §10); Study.ShardStats reports the shape. n <= 0 builds
// monolithically.
func WithShards(n int) Option {
	return func(c *Config) { c.Shards = n }
}

// WithSnapshot warm-loads the transceiver layer from the columnar
// snapshot file at path (Config.SnapshotPath) instead of generating it.
// Write one with Study.WriteSnapshot or `fivealarms -save-snapshot`. A
// study warm-loaded from a snapshot written by the same configuration is
// bit-identical to the cold build it replaces.
func WithSnapshot(path string) Option {
	return func(c *Config) { c.SnapshotPath = path }
}

// NewStudyWithOptions validates the assembled configuration and builds
// all layers through the parallel pipeline (see Config.PipelineSerial
// for the serial escape hatch). Unlike NewStudy, it rejects malformed
// configurations — negative or non-finite dimensions, absurd sizes —
// instead of silently clamping them, and it surfaces build-pipeline
// failures (cancellation via WithContext, contained task panics) as
// errors rather than crashing. On error the returned Study is nil:
// partially built state never escapes.
func NewStudyWithOptions(opts ...Option) (*Study, error) {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return build(cfg.withDefaults())
}
