package fivealarms

// Sharded-execution and snapshot warm-load tests: the out-of-core path
// must be observationally identical to the monolithic build — same
// tables, same validation, same masks, same downstream analyses — at
// any shard count, with any mix of snapshot loading, and its ShardStats
// must account the shape honestly. The cross-shard-count conformance
// sweep lives in shard_conformance_test.go (external package, driving
// refimpl/diffcheck).

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// shardedTwin builds the stress config with n shards (plus any extra
// options) and fails the test on error.
func shardedTwin(t *testing.T, n int, extra ...Option) *Study {
	t.Helper()
	opts := append([]Option{WithConfig(stressCfg), WithShards(n)}, extra...)
	s, err := NewStudyWithOptions(opts...)
	if err != nil {
		t.Fatalf("sharded build (n=%d): %v", n, err)
	}
	return s
}

// TestShardedStudyMatchesMonolithic: every analysis fingerprint — the
// sharded products and the monolithic analyses downstream of them —
// is byte-identical between the monolithic build and sharded twins.
func TestShardedStudyMatchesMonolithic(t *testing.T) {
	want := analysisFingerprints(NewStudy(stressCfg))
	for _, n := range []int{1, 3, 5} {
		got := analysisFingerprints(shardedTwin(t, n))
		for name, w := range want {
			if got[name] != w {
				t.Errorf("n=%d: %s differs from monolithic:\nmonolithic:\n%s\nsharded:\n%s", n, name, w, got[name])
			}
		}
	}
}

// TestShardedSeasonAccessors: on a sharded study the memoized History
// and Season2019 accessors serve the graph-built seasons — identical
// to the monolithic simulations.
func TestShardedSeasonAccessors(t *testing.T) {
	mono := NewStudy(stressCfg)
	sh := shardedTwin(t, 2)
	if got, want := len(sh.History()), len(mono.History()); got != want {
		t.Fatalf("sharded History has %d seasons, monolithic %d", got, want)
	}
	for i, season := range sh.History() {
		if season.Year != mono.History()[i].Year || len(season.Mapped) != len(mono.History()[i].Mapped) {
			t.Errorf("season %d differs between sharded and monolithic history", i)
		}
	}
	if sh.Season2019().Year != mono.Season2019().Year {
		t.Errorf("sharded 2019 season year %d", sh.Season2019().Year)
	}
}

// TestNewStudyPanicsOnSnapshotError: NewStudy keeps its infallible
// signature by panicking on the configurations whose failure surface is
// real (snapshot I/O) — NewStudyWithOptions is the error-returning path.
func TestNewStudyPanicsOnSnapshotError(t *testing.T) {
	cfg := stressCfg
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "absent.fa5c")
	defer func() {
		if recover() == nil {
			t.Error("NewStudy with a missing snapshot did not panic")
		}
	}()
	NewStudy(cfg)
}

// TestShardedMasksBitIdentical: the merged union masks match the
// monolithic fills word for word (fingerprint, not just count).
func TestShardedMasksBitIdentical(t *testing.T) {
	mono := NewStudy(stressCfg)
	sh := shardedTwin(t, 4)
	if got, want := sh.HistoryUnionMask().Fingerprint(), mono.HistoryUnionMask().Fingerprint(); got != want {
		t.Errorf("history union fingerprint %#x != monolithic %#x", got, want)
	}
	if got, want := sh.Season2019UnionMask().Fingerprint(), mono.Season2019UnionMask().Fingerprint(); got != want {
		t.Errorf("2019 union fingerprint %#x != monolithic %#x", got, want)
	}
}

// TestShardedManyEmptyShards: more shards than grid rows leaves many
// bands empty (zero rows, zero transceivers). Empty shards must build,
// merge as no-ops, and leave the results untouched.
func TestShardedManyEmptyShards(t *testing.T) {
	mono := NewStudy(stressCfg)
	sh := shardedTwin(t, 300)
	rows, peak := sh.ShardStats()
	if len(rows) != 300 {
		t.Fatalf("ShardStats reported %d shards, want 300", len(rows))
	}
	total, empty := 0, 0
	for _, r := range rows {
		total += r
		if r == 0 {
			empty++
		}
	}
	if total != mono.Data.Len() {
		t.Errorf("shard rows sum to %d, fleet is %d", total, mono.Data.Len())
	}
	if empty == 0 {
		t.Errorf("expected empty shards at 300 bands over a %d-row grid", sh.World.Grid.NY)
	}
	if peak <= 0 {
		t.Errorf("peak footprint %d, want > 0", peak)
	}
	want := analysisFingerprints(mono)
	got := analysisFingerprints(sh)
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s differs from monolithic with empty shards present", name)
		}
	}
}

// TestShardStats: a monolithic study reports (nil, 0); a sharded one
// reports band-ordered row counts whose peak accounting is monotone in
// the largest band, and the returned slice is a private copy.
func TestShardStats(t *testing.T) {
	mono := NewStudy(stressCfg)
	if rows, peak := mono.ShardStats(); rows != nil || peak != 0 {
		t.Fatalf("monolithic ShardStats = (%v, %d), want (nil, 0)", rows, peak)
	}
	sh := shardedTwin(t, 4)
	rows, peak := sh.ShardStats()
	if len(rows) != 4 || peak <= 0 {
		t.Fatalf("sharded ShardStats = (%v, %d)", rows, peak)
	}
	rows[0] = -1
	again, _ := sh.ShardStats()
	if again[0] == -1 {
		t.Fatal("ShardStats returned an aliased slice")
	}
}

// TestSnapshotWarmLoadBitIdentical: a study warm-loaded from a snapshot
// written by its own twin is indistinguishable from the cold build —
// including under sharded execution on top of the warm load.
func TestSnapshotWarmLoadBitIdentical(t *testing.T) {
	cold := NewStudy(stressCfg)
	path := filepath.Join(t.TempDir(), "fleet.fa5c")
	if err := cold.WriteSnapshot(path); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	want := analysisFingerprints(cold)
	for _, shards := range []int{0, 4} {
		opts := []Option{WithConfig(stressCfg), WithSnapshot(path)}
		if shards > 0 {
			opts = append(opts, WithShards(shards))
		}
		warm, err := NewStudyWithOptions(opts...)
		if err != nil {
			t.Fatalf("warm build (shards=%d): %v", shards, err)
		}
		if warm.Data.Len() != cold.Data.Len() {
			t.Fatalf("shards=%d: warm fleet %d rows, cold %d", shards, warm.Data.Len(), cold.Data.Len())
		}
		got := analysisFingerprints(warm)
		for name, w := range want {
			if got[name] != w {
				t.Errorf("shards=%d: %s differs between cold build and snapshot warm load", shards, name)
			}
		}
	}
}

// TestSnapshotLoadErrorsSurface: a missing or corrupt snapshot fails
// the build with an error naming the path — no partial Study escapes.
func TestSnapshotLoadErrorsSurface(t *testing.T) {
	s, err := NewStudyWithOptions(WithConfig(stressCfg), WithSnapshot(filepath.Join(t.TempDir(), "absent.fa5c")))
	if err == nil || s != nil {
		t.Fatalf("missing snapshot: study=%v err=%v", s, err)
	}

	bad := filepath.Join(t.TempDir(), "corrupt.fa5c")
	if err := os.WriteFile(bad, []byte("FA5Cnot really a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = NewStudyWithOptions(WithConfig(stressCfg), WithSnapshot(bad))
	if err == nil || s != nil {
		t.Fatalf("corrupt snapshot: study=%v err=%v", s, err)
	}
	if !strings.Contains(err.Error(), bad) {
		t.Errorf("corrupt-snapshot error %q does not name the path", err)
	}
}

// TestWriteSnapshotErrors: an unwritable destination is reported and no
// partial file is left behind.
func TestWriteSnapshotErrors(t *testing.T) {
	s := NewStudy(stressCfg)
	path := filepath.Join(t.TempDir(), "no-such-dir", "fleet.fa5c")
	if err := s.WriteSnapshot(path); err == nil {
		t.Fatal("WriteSnapshot into a missing directory succeeded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("partial snapshot left behind: stat err = %v", err)
	}
}

// TestValidateRejectsBadShards: out-of-range shard counts are
// configuration errors, reported by field.
func TestValidateRejectsBadShards(t *testing.T) {
	for _, n := range []int{-1, maxShards + 1} {
		cfg := stressCfg
		cfg.Shards = n
		if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "Shards") {
			t.Errorf("Shards=%d: Validate() = %v, want a Shards error", n, err)
		}
		if _, err := NewStudyWithOptions(WithConfig(cfg)); err == nil {
			t.Errorf("Shards=%d: NewStudyWithOptions accepted it", n)
		}
	}
}
