package fivealarms

// BenchmarkShardedStudy measures the out-of-core sharded path. At the
// default scale it benches a small sharded build (so `make bench` stays
// fast); with FIVEALARMS_BENCH_PAPER=1 in the environment — the mode
// `make bench-shard` runs — it records the full paper-scale cold build:
// the 5,364,949-transceiver fleet on the 2.7 km national raster, all 19
// historical seasons plus the 2019 hold-out, sharded over CONUS row
// bands. Reported metrics: wall time per cold build (ns/op), the
// accounted peak per-shard transient footprint (peak-shard-B), and the
// fleet size (rows). `make bench-shard` captures the run as test2json
// events in BENCH_shard.json.

import (
	"fmt"
	"os"
	"testing"
)

// benchShardConfig resolves the bench scale: paper scale when
// FIVEALARMS_BENCH_PAPER is set, the shared stress scale otherwise.
func benchShardConfig() (Config, []int) {
	if os.Getenv("FIVEALARMS_BENCH_PAPER") != "" {
		return PaperScale(7), []int{16}
	}
	cfg := stressCfg
	cfg.Transceivers = 20000
	return cfg, []int{4}
}

func BenchmarkShardedStudy(b *testing.B) {
	cfg, shardCounts := benchShardConfig()
	for _, n := range shardCounts {
		c := cfg
		c.Shards = n
		b.Run(fmt.Sprintf("cold-build-shards-%d", n), func(b *testing.B) {
			var rows []int
			var peak int64
			for i := 0; i < b.N; i++ {
				s, err := NewStudyWithOptions(WithConfig(c))
				if err != nil {
					b.Fatal(err)
				}
				// Touch the merged products so an unbuilt result can't
				// masquerade as a fast build.
				if len(s.Table1()) != 19 {
					b.Fatal("table1 incomplete")
				}
				if s.HistoryUnionMask().Count() == 0 {
					b.Fatal("empty history union")
				}
				rows, peak = s.ShardStats()
			}
			total := 0
			for _, r := range rows {
				total += r
			}
			b.ReportMetric(float64(peak), "peak-shard-B")
			b.ReportMetric(float64(total), "rows")
		})
	}
}
