// Sharded conformance driver: sweeps the diffcheck twins that pin the
// sharded execution path to the monolithic build. External test package
// on purpose — diffcheck imports fivealarms for its whole-study driver,
// so an internal test importing diffcheck would cycle.
package fivealarms_test

import (
	"testing"

	"fivealarms/internal/refimpl/diffcheck"
)

// TestShardedDiffcheckSweep runs the whole-study sharded twin: per
// seed, one monolithic study against every (shard count, schedule)
// pair, byte-identical tables/validation and fingerprint-identical
// masks. Each seed builds nine studies, so the sweep stays small; the
// mask-merge kernel below carries the wide adversarial sweep.
func TestShardedDiffcheckSweep(t *testing.T) {
	n := 3
	if testing.Short() {
		n = 1
	}
	if err := diffcheck.Sweep(n, diffcheck.CheckSharded); err != nil {
		t.Fatal(err)
	}
}

// TestShardedMaskMergeSweep runs the band-fill merge kernel against the
// monolithic rasterizer over the generated adversarial fill cases —
// perimeters straddling band boundaries at several shard counts,
// including one-row bands.
func TestShardedMaskMergeSweep(t *testing.T) {
	if err := diffcheck.Sweep(200, diffcheck.CheckShardMaskMerge); err != nil {
		t.Fatal(err)
	}
}
