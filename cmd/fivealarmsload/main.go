// Command fivealarmsload drives the v1 risk-query API with a mixed
// read workload and reports sustained throughput and latency
// quantiles. Three modes:
//
//	fivealarmsload -smoke -addr http://HOST:PORT
//	    One probe of /v1/healthz and /v1/risk/point, exit nonzero on
//	    any failure. Used by `make serve-smoke`.
//
//	fivealarmsload [-addr http://HOST:PORT] [flags]
//	    Timed load run. With -addr empty the generator self-hosts an
//	    in-process server (httptest-style, no network flakiness) at the
//	    scale given by the study flags, warms it, then measures. The
//	    JSON summary goes to stdout and, with -out, to a file.
//
//	fivealarmsload -overload [flags]
//	    Two-phase run (self-hosted only): a steady phase at the normal
//	    concurrency, then an overload phase driving a deliberately
//	    constrained server (tiny admission capacity) at several times
//	    its limit. The overload phase exists to measure the resilience
//	    layer: requests beyond capacity must be shed promptly with
//	    429/503 — never time out. -expect-shed turns that expectation
//	    into the exit code, for CI.
//
// Every response is classified — 2xx, shed (429/503), client-side
// timeout, or other failure — and the summary carries the counts plus
// the shed rate, so overload behavior is a first-class benchmark
// result rather than an undifferentiated error tally.
//
// The query mix is deterministic per -loadseed (internal/rng), so two
// runs against the same server issue the identical request sequence.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"fivealarms"
	"fivealarms/internal/rng"
	"fivealarms/internal/serve"
)

// Overload-phase shape: a server constrained to overloadInFlight weight
// units and an overloadQueue-deep wait queue, driven by overloadWorkers
// concurrent loops — 4× the total admitted+queued capacity.
const (
	overloadInFlight = 4
	overloadQueue    = 4
	overloadWorkers  = 4 * (overloadInFlight + overloadQueue)
)

func main() {
	var (
		addr       = flag.String("addr", "", "server base URL; empty self-hosts an in-process server")
		smoke      = flag.Bool("smoke", false, "single healthz + risk probe instead of a timed run")
		dur        = flag.Duration("dur", 5*time.Second, "measurement duration (per phase with -overload)")
		workers    = flag.Int("workers", 4, "concurrent request loops (steady phase)")
		loadseed   = flag.Uint64("loadseed", 1, "seed for the deterministic query mix")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-request client timeout")
		overload   = flag.Bool("overload", false, "add an overload phase against a constrained server (self-hosted only)")
		expectShed = flag.Bool("expect-shed", false, "with -overload: exit nonzero unless overload shed (429/503) and nothing timed out")
		out        = flag.String("out", "", "also write the JSON summary to this file")

		seed  = flag.Uint64("seed", 7, "self-hosted study: master random seed")
		cell  = flag.Float64("cell", 20000, "self-hosted study: raster cell size in meters")
		tx    = flag.Int("transceivers", 60000, "self-hosted study: snapshot size")
		fires = flag.Int("fires", 12, "self-hosted study: mapped fires per season")
	)
	flag.Parse()
	if err := run(runConfig{
		addr: *addr, smoke: *smoke, dur: *dur, workers: *workers,
		loadseed: *loadseed, timeout: *timeout,
		overload: *overload, expectShed: *expectShed, out: *out,
		study: fivealarms.Config{Seed: *seed, CellSizeM: *cell,
			Transceivers: *tx, MappedFiresPerSeason: *fires},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "fivealarmsload:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	addr       string
	smoke      bool
	dur        time.Duration
	workers    int
	loadseed   uint64
	timeout    time.Duration
	overload   bool
	expectShed bool
	out        string
	study      fivealarms.Config
}

// phaseSummary is one measured phase of BENCH_serve.json.
type phaseSummary struct {
	Mode      string  `json:"mode"` // "self-hosted" or "remote"
	DurationS float64 `json:"duration_s"`
	Workers   int     `json:"workers"`
	Requests  int     `json:"requests"`
	OK        int     `json:"ok"`
	Shed429   int     `json:"shed_429"`
	Shed503   int     `json:"shed_503"`
	Timeouts  int     `json:"timeouts"`
	Errors    int     `json:"errors"` // non-2xx/429/503 statuses and transport failures
	ShedRate  float64 `json:"shed_rate"`
	QPS       float64 `json:"qps"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`

	StudyScale string `json:"study_scale,omitempty"`
	Admission  string `json:"admission,omitempty"` // overload phase: the constrained limits
}

// benchOutput is the full BENCH_serve.json shape; Overload is present
// only for -overload runs (additive, like the v1 wire contract).
type benchOutput struct {
	Steady   phaseSummary  `json:"steady"`
	Overload *phaseSummary `json:"overload,omitempty"`
}

func run(rc runConfig) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	base := rc.addr
	mode := "remote"
	if base == "" {
		if rc.smoke {
			return fmt.Errorf("-smoke needs -addr (probe an already-running server)")
		}
		srv, err := serve.New(ctx, serve.Options{Config: rc.study})
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "fivealarmsload: building study (warm-up, unmeasured)")
		if err := srv.Warm(ctx); err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		mode = "self-hosted"
	} else if rc.overload {
		return fmt.Errorf("-overload is self-hosted only (drop -addr): it needs to constrain the server it drives")
	}

	client := &http.Client{Timeout: rc.timeout}
	if rc.smoke {
		return probe(client, base)
	}

	// One warm pass over every endpoint in the mix, so the timed window
	// measures steady-state serving, not first-touch memoization.
	warmSrc := rng.New(rc.loadseed ^ 0x5eed)
	for i := 0; i < len(queryMix); i++ {
		if _, _, err := queryMix[i](client, base, warmSrc); err != nil {
			return fmt.Errorf("warm-up %d: %w", i, err)
		}
	}

	steady, err := measure(client, base, rc.workers, rc.dur, rc.loadseed)
	if err != nil {
		return err
	}
	steady.Mode = mode
	if mode == "self-hosted" {
		steady.StudyScale = fmt.Sprintf("seed=%d cell=%gm tx=%d fires=%d",
			rc.study.Seed, rc.study.CellSizeM, rc.study.Transceivers, rc.study.MappedFiresPerSeason)
	}

	result := benchOutput{Steady: steady}
	if rc.overload {
		over, err := overloadPhase(ctx, client, rc)
		if err != nil {
			return err
		}
		result.Overload = &over
	}

	body, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if _, err := os.Stdout.Write(body); err != nil {
		return err
	}
	if rc.out != "" {
		if err := os.WriteFile(rc.out, body, 0o644); err != nil {
			return err
		}
	}

	if n := steady.Timeouts + steady.Errors; n > 0 {
		return fmt.Errorf("steady phase: %d of %d requests failed", n, steady.Requests)
	}
	if rc.expectShed {
		if !rc.overload {
			return fmt.Errorf("-expect-shed needs -overload")
		}
		o := result.Overload
		if o.Shed429+o.Shed503 == 0 {
			return fmt.Errorf("overload phase shed nothing at %dx oversubscription", overloadWorkers/(overloadInFlight+overloadQueue))
		}
		if o.Timeouts > 0 || o.Errors > 0 {
			return fmt.Errorf("overload phase: %d timeouts, %d errors — want shed, not failure", o.Timeouts, o.Errors)
		}
	}
	return nil
}

// overloadPhase self-hosts a second server with deliberately tiny
// admission limits and drives it at 4× its admitted+queued capacity.
func overloadPhase(ctx context.Context, client *http.Client, rc runConfig) (phaseSummary, error) {
	srv, err := serve.New(ctx, serve.Options{
		Config:       rc.study,
		MaxInFlight:  overloadInFlight,
		MaxQueue:     overloadQueue,
		ReadDeadline: 500 * time.Millisecond,
	})
	if err != nil {
		return phaseSummary{}, err
	}
	fmt.Fprintln(os.Stderr, "fivealarmsload: building constrained server (overload phase, unmeasured)")
	if err := srv.Warm(ctx); err != nil {
		return phaseSummary{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The default transport caps idle conns per host below our worker
	// count; without this the client itself throttles the storm.
	tr := &http.Transport{MaxIdleConnsPerHost: overloadWorkers}
	defer tr.CloseIdleConnections()
	stormClient := &http.Client{Timeout: client.Timeout, Transport: tr}

	over, err := measure(stormClient, ts.URL, overloadWorkers, rc.dur, rc.loadseed^0xacce55)
	if err != nil {
		return phaseSummary{}, err
	}
	over.Mode = "self-hosted"
	over.Admission = fmt.Sprintf("inflight=%d queue=%d", overloadInFlight, overloadQueue)
	return over, nil
}

// measure drives the query mix with the given concurrency for dur and
// classifies every response.
func measure(client *http.Client, base string, workers int, dur time.Duration, loadseed uint64) (phaseSummary, error) {
	type sample struct {
		ms     float64
		status int
		err    error
	}
	results := make([][]sample, workers)
	var wg sync.WaitGroup
	start := now()
	deadline := start.Add(dur)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := rng.NewStream(loadseed, uint64(w))
			var buf []sample
			for now().Before(deadline) {
				q := queryMix[src.Intn(len(queryMix))]
				t0 := now()
				status, _, err := q(client, base, src)
				buf = append(buf, sample{
					ms:     float64(time.Since(t0).Nanoseconds()) / 1e6,
					status: status,
					err:    err,
				})
			}
			results[w] = buf
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []float64
	sum := phaseSummary{DurationS: elapsed.Seconds(), Workers: workers}
	for _, buf := range results {
		for _, s := range buf {
			lats = append(lats, s.ms)
			switch {
			case s.err != nil:
				var ne net.Error
				if errors.As(s.err, &ne) && ne.Timeout() {
					sum.Timeouts++
				} else {
					sum.Errors++
				}
			case s.status == http.StatusTooManyRequests:
				sum.Shed429++
			case s.status == http.StatusServiceUnavailable:
				sum.Shed503++
			case s.status >= 200 && s.status < 300:
				sum.OK++
			default:
				sum.Errors++
			}
		}
	}
	if len(lats) == 0 {
		return sum, fmt.Errorf("no requests completed in %v", dur)
	}
	sort.Float64s(lats)
	sum.Requests = len(lats)
	sum.ShedRate = float64(sum.Shed429+sum.Shed503) / float64(len(lats))
	sum.QPS = float64(len(lats)) / elapsed.Seconds()
	sum.P50Ms = quantile(lats, 0.50)
	sum.P99Ms = quantile(lats, 0.99)
	sum.MaxMs = lats[len(lats)-1]
	return sum, nil
}

// now is the load generator's wall clock. Latency measurement is
// inherently wall-clock; the deterministic part of this tool (the
// query sequence) comes from internal/rng, never from time.
func now() time.Time {
	return time.Now() //fivealarms:allow(seededrand) load generation measures real wall-clock latency
}

// queryMix is the workload: mostly point lookups (the hot path), some
// bbox scans, occasional table/overlay reads. Extend and validate are
// excluded — they are one-shot memoized analyses, not serving load.
var queryMix = []func(c *http.Client, base string, src *rng.Source) (int, []byte, error){
	riskPoint, riskPoint, riskPoint, riskPoint, // 4/8 point queries
	riskBBox, riskBBox, // 2/8 bbox scans
	table, overlay, // 1/8 each
}

// get issues one GET and drains the body (keep-alive reuse).
func get(c *http.Client, url string) (int, []byte, error) {
	resp, err := c.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

// conusLonLat draws a point roughly inside CONUS.
func conusLonLat(src *rng.Source) (lon, lat float64) {
	return src.Range(-124, -67), src.Range(25, 49)
}

func riskPoint(c *http.Client, base string, src *rng.Source) (int, []byte, error) {
	lon, lat := conusLonLat(src)
	return get(c, fmt.Sprintf("%s/v1/risk/point?lon=%.4f&lat=%.4f", base, lon, lat))
}

func riskBBox(c *http.Client, base string, src *rng.Source) (int, []byte, error) {
	lon, lat := conusLonLat(src)
	dl := src.Range(0.5, 3)
	return get(c, fmt.Sprintf("%s/v1/risk/bbox?min_lon=%.4f&min_lat=%.4f&max_lon=%.4f&max_lat=%.4f",
		base, lon, lat, lon+dl, lat+dl/2))
}

func table(c *http.Client, base string, src *rng.Source) (int, []byte, error) {
	return get(c, fmt.Sprintf("%s/v1/tables/%d", base, 1+src.Intn(3)))
}

func overlay(c *http.Client, base string, _ *rng.Source) (int, []byte, error) {
	return get(c, base+"/v1/overlay/whp")
}

// quantile reads the q'th quantile from sorted latencies.
func quantile(sorted []float64, q float64) float64 {
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// probe is the smoke mode: healthz must answer ok, one risk query must
// decode with the v1 version stamp.
func probe(c *http.Client, base string) error {
	status, body, err := get(c, base+"/v1/healthz")
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("healthz: status %d, err %v", status, err)
	}
	if !bytes.Contains(body, []byte(`"status": "ok"`)) {
		return fmt.Errorf("healthz: unexpected body %s", body)
	}
	status, body, err = get(c, base+"/v1/risk/point?lon=-120.5&lat=38.5")
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("risk/point: status %d, err %v", status, err)
	}
	var pt struct {
		Version     string `json:"version"`
		HazardClass string `json:"hazard_class"`
	}
	if err := json.Unmarshal(body, &pt); err != nil {
		return fmt.Errorf("risk/point: %v (body %s)", err, body)
	}
	if pt.Version != "v1" || pt.HazardClass == "" {
		return fmt.Errorf("risk/point: want v1 + hazard class, got %s", body)
	}
	fmt.Println("smoke ok:", base)
	return nil
}
