// Command fivealarmsload drives the v1 risk-query API with a mixed
// read workload and reports sustained throughput and latency
// quantiles. Two modes:
//
//	fivealarmsload -smoke -addr http://HOST:PORT
//	    One probe of /v1/healthz and /v1/risk/point, exit nonzero on
//	    any failure. Used by `make serve-smoke`.
//
//	fivealarmsload [-addr http://HOST:PORT] [flags]
//	    Timed load run. With -addr empty the generator self-hosts an
//	    in-process server (httptest-style, no network flakiness) at the
//	    scale given by the study flags, warms it, then measures. The
//	    JSON summary goes to stdout and, with -out, to a file.
//
// The query mix is deterministic per -loadseed (internal/rng), so two
// runs against the same server issue the identical request sequence.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"fivealarms"
	"fivealarms/internal/rng"
	"fivealarms/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "", "server base URL; empty self-hosts an in-process server")
		smoke    = flag.Bool("smoke", false, "single healthz + risk probe instead of a timed run")
		dur      = flag.Duration("dur", 5*time.Second, "measurement duration")
		workers  = flag.Int("workers", 4, "concurrent request loops")
		loadseed = flag.Uint64("loadseed", 1, "seed for the deterministic query mix")
		out      = flag.String("out", "", "also write the JSON summary to this file")

		seed  = flag.Uint64("seed", 7, "self-hosted study: master random seed")
		cell  = flag.Float64("cell", 20000, "self-hosted study: raster cell size in meters")
		tx    = flag.Int("transceivers", 60000, "self-hosted study: snapshot size")
		fires = flag.Int("fires", 12, "self-hosted study: mapped fires per season")
	)
	flag.Parse()
	if err := run(runConfig{
		addr: *addr, smoke: *smoke, dur: *dur, workers: *workers,
		loadseed: *loadseed, out: *out,
		study: fivealarms.Config{Seed: *seed, CellSizeM: *cell,
			Transceivers: *tx, MappedFiresPerSeason: *fires},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "fivealarmsload:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	addr     string
	smoke    bool
	dur      time.Duration
	workers  int
	loadseed uint64
	out      string
	study    fivealarms.Config
}

// summary is the BENCH_serve.json shape.
type summary struct {
	Mode       string  `json:"mode"` // "self-hosted" or "remote"
	DurationS  float64 `json:"duration_s"`
	Workers    int     `json:"workers"`
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	QPS        float64 `json:"qps"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
	StudyScale string  `json:"study_scale,omitempty"`
}

func run(rc runConfig) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	base := rc.addr
	mode := "remote"
	if base == "" {
		if rc.smoke {
			return fmt.Errorf("-smoke needs -addr (probe an already-running server)")
		}
		srv, err := serve.New(ctx, serve.Options{Config: rc.study})
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "fivealarmsload: building study (warm-up, unmeasured)")
		if err := srv.Warm(ctx); err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		mode = "self-hosted"
	}

	client := &http.Client{Timeout: 30 * time.Second}
	if rc.smoke {
		return probe(client, base)
	}

	// One warm pass over every endpoint in the mix, so the timed window
	// measures steady-state serving, not first-touch memoization.
	warmSrc := rng.New(rc.loadseed ^ 0x5eed)
	for i := 0; i < len(queryMix); i++ {
		if _, _, err := queryMix[i](client, base, warmSrc); err != nil {
			return fmt.Errorf("warm-up %d: %w", i, err)
		}
	}

	type sample struct {
		ms  float64
		err bool
	}
	results := make([][]sample, rc.workers)
	errc := make(chan error, rc.workers)
	start := now()
	deadline := start.Add(rc.dur)
	for w := 0; w < rc.workers; w++ {
		w := w
		go func() {
			src := rng.NewStream(rc.loadseed, uint64(w))
			var buf []sample
			for now().Before(deadline) {
				q := queryMix[src.Intn(len(queryMix))]
				t0 := now()
				status, _, err := q(client, base, src)
				buf = append(buf, sample{
					ms:  float64(time.Since(t0).Nanoseconds()) / 1e6,
					err: err != nil || status >= 400,
				})
			}
			results[w] = buf
			errc <- nil
		}()
	}
	for w := 0; w < rc.workers; w++ {
		if err := <-errc; err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	var lats []float64
	errs := 0
	for _, buf := range results {
		for _, s := range buf {
			lats = append(lats, s.ms)
			if s.err {
				errs++
			}
		}
	}
	if len(lats) == 0 {
		return fmt.Errorf("no requests completed in %v", rc.dur)
	}
	sort.Float64s(lats)
	sum := summary{
		Mode:      mode,
		DurationS: elapsed.Seconds(),
		Workers:   rc.workers,
		Requests:  len(lats),
		Errors:    errs,
		QPS:       float64(len(lats)) / elapsed.Seconds(),
		P50Ms:     quantile(lats, 0.50),
		P99Ms:     quantile(lats, 0.99),
		MaxMs:     lats[len(lats)-1],
	}
	if mode == "self-hosted" {
		sum.StudyScale = fmt.Sprintf("seed=%d cell=%gm tx=%d fires=%d",
			rc.study.Seed, rc.study.CellSizeM, rc.study.Transceivers, rc.study.MappedFiresPerSeason)
	}
	body, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	os.Stdout.Write(body)
	if rc.out != "" {
		if err := os.WriteFile(rc.out, body, 0o644); err != nil {
			return err
		}
	}
	if errs > 0 {
		return fmt.Errorf("%d of %d requests failed", errs, len(lats))
	}
	return nil
}

// now is the load generator's wall clock. Latency measurement is
// inherently wall-clock; the deterministic part of this tool (the
// query sequence) comes from internal/rng, never from time.
func now() time.Time {
	return time.Now() //fivealarms:allow(seededrand) load generation measures real wall-clock latency
}

// queryMix is the workload: mostly point lookups (the hot path), some
// bbox scans, occasional table/overlay reads. Extend and validate are
// excluded — they are one-shot memoized analyses, not serving load.
var queryMix = []func(c *http.Client, base string, src *rng.Source) (int, []byte, error){
	riskPoint, riskPoint, riskPoint, riskPoint, // 4/8 point queries
	riskBBox, riskBBox, // 2/8 bbox scans
	table, overlay, // 1/8 each
}

// get issues one GET and drains the body (keep-alive reuse).
func get(c *http.Client, url string) (int, []byte, error) {
	resp, err := c.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

// conusLonLat draws a point roughly inside CONUS.
func conusLonLat(src *rng.Source) (lon, lat float64) {
	return src.Range(-124, -67), src.Range(25, 49)
}

func riskPoint(c *http.Client, base string, src *rng.Source) (int, []byte, error) {
	lon, lat := conusLonLat(src)
	return get(c, fmt.Sprintf("%s/v1/risk/point?lon=%.4f&lat=%.4f", base, lon, lat))
}

func riskBBox(c *http.Client, base string, src *rng.Source) (int, []byte, error) {
	lon, lat := conusLonLat(src)
	dl := src.Range(0.5, 3)
	return get(c, fmt.Sprintf("%s/v1/risk/bbox?min_lon=%.4f&min_lat=%.4f&max_lon=%.4f&max_lat=%.4f",
		base, lon, lat, lon+dl, lat+dl/2))
}

func table(c *http.Client, base string, src *rng.Source) (int, []byte, error) {
	return get(c, fmt.Sprintf("%s/v1/tables/%d", base, 1+src.Intn(3)))
}

func overlay(c *http.Client, base string, _ *rng.Source) (int, []byte, error) {
	return get(c, base+"/v1/overlay/whp")
}

// quantile reads the q'th quantile from sorted latencies.
func quantile(sorted []float64, q float64) float64 {
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// probe is the smoke mode: healthz must answer ok, one risk query must
// decode with the v1 version stamp.
func probe(c *http.Client, base string) error {
	status, body, err := get(c, base+"/v1/healthz")
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("healthz: status %d, err %v", status, err)
	}
	if !bytes.Contains(body, []byte(`"status": "ok"`)) {
		return fmt.Errorf("healthz: unexpected body %s", body)
	}
	status, body, err = get(c, base+"/v1/risk/point?lon=-120.5&lat=38.5")
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("risk/point: status %d, err %v", status, err)
	}
	var pt struct {
		Version     string `json:"version"`
		HazardClass string `json:"hazard_class"`
	}
	if err := json.Unmarshal(body, &pt); err != nil {
		return fmt.Errorf("risk/point: %v (body %s)", err, body)
	}
	if pt.Version != "v1" || pt.HazardClass == "" {
		return fmt.Errorf("risk/point: want v1 + hazard class, got %s", body)
	}
	fmt.Println("smoke ok:", base)
	return nil
}
