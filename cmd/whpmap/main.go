// Command whpmap renders map layers of the synthetic study — the WHP
// raster (Figure 6), the transceiver density field (Figure 2), the
// 2000-2018 perimeter union (Figure 3), the 2019 season, the WUI layer,
// and Figure 13-style metro detail windows with at-risk transceivers
// overlaid — as PNG images or terminal ASCII.
//
// Usage:
//
//	whpmap -layer whp -o whp.png
//	whpmap -layer whp -ascii
//	whpmap -layer metro -lon -118 -lat 34 -km 150 -window-cell 1000 -o la.png
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fivealarms"
	"fivealarms/internal/cli"
	"fivealarms/internal/whp"
)

func main() {
	var (
		seed  = flag.Uint64("seed", 7, "master random seed")
		cell  = flag.Float64("cell", 10000, "world raster cell size in meters")
		tx    = flag.Int("transceivers", 150000, "synthetic snapshot size")
		layer = flag.String("layer", "whp", "layer: "+strings.Join(cli.MapLayers, ", "))
		out   = flag.String("o", "", "output PNG path (empty with -ascii for terminal output)")
		ascii = flag.Bool("ascii", false, "render as ASCII to stdout instead of PNG")
		width = flag.Int("width", 120, "ASCII render width in characters")

		// Metro-window options (layer=metro).
		lon   = flag.Float64("lon", -118.0, "window center longitude")
		lat   = flag.Float64("lat", 34.0, "window center latitude")
		km    = flag.Float64("km", 150, "window half-width in km")
		wcell = flag.Float64("window-cell", 1000, "window raster cell size in meters")
	)
	flag.Parse()

	study, err := fivealarms.NewStudyWithOptions(
		fivealarms.WithSeed(*seed),
		fivealarms.WithCellSizeM(*cell),
		fivealarms.WithTransceivers(*tx),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err) // library errors carry the package prefix
		os.Exit(2)
	}

	classes, pal, err := cli.BuildMapLayer(study, *layer, cli.MapOptions{
		Lon: *lon, Lat: *lat, KM: *km, WindowCell: *wcell,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "whpmap:", err)
		os.Exit(1)
	}

	if *ascii || *out == "" {
		glyphs := map[uint8]rune{
			uint8(whp.Water):       ' ',
			uint8(whp.NonBurnable): ':',
			uint8(whp.VeryLow):     '.',
			uint8(whp.Low):         ',',
			uint8(whp.Moderate):    'm',
			uint8(whp.High):        'H',
			uint8(whp.VeryHigh):    '#',
			cli.TxMarker:           '@',
		}
		fmt.Print(classes.ASCII(glyphs, *width))
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whpmap:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := classes.WritePNG(f, pal); err != nil {
		fmt.Fprintln(os.Stderr, "whpmap:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%dx%d)\n", *out, classes.NX, classes.NY)
}
