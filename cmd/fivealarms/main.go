// Command fivealarms regenerates the paper's tables and figures from a
// deterministic synthetic study.
//
// Usage:
//
//	fivealarms [flags] <experiment>
//
// Run with -h for the experiment list. Flags select the study scale;
// every run with the same flags produces identical output.
package main

import (
	"flag"
	"fmt"
	"os"

	"fivealarms"
	"fivealarms/internal/cli"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 7, "master random seed")
		cell       = flag.Float64("cell", 10000, "world raster cell size in meters")
		tx         = flag.Int("transceivers", 150000, "synthetic OpenCelliD snapshot size")
		fires      = flag.Int("fires", 60, "mapped fires per simulated season")
		format     = flag.String("format", "text", "output format: text, csv or json")
		paperScale = flag.Bool("paper-scale", false, "start from the paper's full data volumes (5.36M transceivers, 2.7 km raster); explicit scale flags still override")
		shards     = flag.Int("shards", 0, "shard the transceiver-axis analyses over this many CONUS row bands (0 = monolithic; results identical)")
		snapshot   = flag.String("snapshot", "", "warm-load the transceiver layer from this columnar snapshot file")
		saveSnap   = flag.String("save-snapshot", "", "after building, write the transceiver layer to this snapshot file")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 && !(flag.NArg() == 0 && *saveSnap != "") {
		usage()
		os.Exit(2)
	}

	// -paper-scale seeds the whole configuration; explicitly set scale
	// flags (and every other flag) then override field by field.
	opts := []fivealarms.Option{fivealarms.WithSeed(*seed)}
	if *paperScale {
		opts = []fivealarms.Option{fivealarms.WithPaperScale(*seed)}
	}
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if !*paperScale || explicit["cell"] {
		opts = append(opts, fivealarms.WithCellSizeM(*cell))
	}
	if !*paperScale || explicit["transceivers"] {
		opts = append(opts, fivealarms.WithTransceivers(*tx))
	}
	if !*paperScale || explicit["fires"] {
		opts = append(opts, fivealarms.WithFiresPerSeason(*fires))
	}
	if *shards != 0 {
		opts = append(opts, fivealarms.WithShards(*shards))
	}
	if *snapshot != "" {
		opts = append(opts, fivealarms.WithSnapshot(*snapshot))
	}

	study, err := fivealarms.NewStudyWithOptions(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err) // library errors carry the package prefix
		os.Exit(2)
	}
	if *saveSnap != "" {
		if err := study.WriteSnapshot(*saveSnap); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fivealarms: snapshot saved to %s\n", *saveSnap)
		if flag.NArg() == 0 {
			return
		}
	}

	tables, err := cli.Run(study, flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fivealarms:", err)
		os.Exit(1)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if err := cli.Emit(os.Stdout, t, *format); err != nil {
			fmt.Fprintln(os.Stderr, "fivealarms:", err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: fivealarms [flags] <experiment>

Regenerates the tables and figures of "Five Alarms" (IMC 2020) from a
deterministic synthetic study.

Experiments:
%s
Flags:
`, cli.Usage())
	flag.PrintDefaults()
}
