// Command fivealarms regenerates the paper's tables and figures from a
// deterministic synthetic study.
//
// Usage:
//
//	fivealarms [flags] <experiment>
//
// Run with -h for the experiment list. Flags select the study scale;
// every run with the same flags produces identical output.
package main

import (
	"flag"
	"fmt"
	"os"

	"fivealarms"
	"fivealarms/internal/cli"
)

func main() {
	var (
		seed   = flag.Uint64("seed", 7, "master random seed")
		cell   = flag.Float64("cell", 10000, "world raster cell size in meters")
		tx     = flag.Int("transceivers", 150000, "synthetic OpenCelliD snapshot size")
		fires  = flag.Int("fires", 60, "mapped fires per simulated season")
		format = flag.String("format", "text", "output format: text, csv or json")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	study, err := fivealarms.NewStudyWithOptions(
		fivealarms.WithSeed(*seed),
		fivealarms.WithCellSizeM(*cell),
		fivealarms.WithTransceivers(*tx),
		fivealarms.WithFiresPerSeason(*fires),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err) // library errors carry the package prefix
		os.Exit(2)
	}

	tables, err := cli.Run(study, flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fivealarms:", err)
		os.Exit(1)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if err := cli.Emit(os.Stdout, t, *format); err != nil {
			fmt.Fprintln(os.Stderr, "fivealarms:", err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: fivealarms [flags] <experiment>

Regenerates the tables and figures of "Five Alarms" (IMC 2020) from a
deterministic synthetic study.

Experiments:
%s
Flags:
`, cli.Usage())
	flag.PrintDefaults()
}
