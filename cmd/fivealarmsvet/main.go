// Command fivealarmsvet runs the fivealarms static-analysis suite
// (internal/lint) over the module: the determinism, failure-model,
// float-equality, context-flow, copy-safety, test-only-import,
// map-order, wire-freeze, goroutine-leak, and error-flow contracts the
// reproduction's numbers depend on.
//
// Usage:
//
//	fivealarmsvet [-json|-sarif] [-rules] [-debt] [-write-apilock] [packages]
//
// With no arguments (or "./...") the whole module is checked. Explicit
// package directories ("./internal/geom") restrict the run. The exit
// code is 0 when clean, 1 when findings are reported, and 2 when a
// package fails to load. Findings are suppressed only by annotated
// //fivealarms:allow(<rule>) <reason> comments; see DESIGN.md §6.
//
// -sarif emits findings as a SARIF 2.1.0 document for GitHub code
// scanning. -debt audits the live suppressions instead of checking:
// every allow annotation with its rule, age (via git blame) and
// reason. -write-apilock regenerates internal/serve/api/api.lock from
// the package's current DTO shape — the deliberate act that records an
// additive wire-contract change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fivealarms/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fprintf writes best-effort terminal output: a failed diagnostic
// write has no better channel to report to.
func fprintf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...) //fivealarms:allow(errflow) terminal diagnostics are best-effort; there is no channel left to report a write failure to
}

func fprintln(w io.Writer, args ...any) {
	_, _ = fmt.Fprintln(w, args...) //fivealarms:allow(errflow) terminal diagnostics are best-effort; there is no channel left to report a write failure to
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("fivealarmsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 document")
	listRules := fs.Bool("rules", false, "print the rule inventory and exit")
	debt := fs.Bool("debt", false, "report live //fivealarms:allow suppressions with rule, age, and reason")
	writeLock := fs.Bool("write-apilock", false, "regenerate internal/serve/api/api.lock from the current DTO shape")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listRules {
		for _, r := range lint.Rules() {
			fprintf(stdout, "%-16s %s\n", r.Name, r.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fprintln(stderr, "fivealarmsvet:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fprintln(stderr, "fivealarmsvet:", err)
		return 2
	}
	_, all, err := lint.DiscoverModule(root)
	if err != nil {
		fprintln(stderr, "fivealarmsvet:", err)
		return 2
	}

	if *writeLock {
		return runWriteAPILock(all, stdout, stderr)
	}

	targets, err := selectTargets(all, fs.Args(), root, cwd)
	if err != nil {
		fprintln(stderr, "fivealarmsvet:", err)
		return 2
	}

	loader := lint.NewLoader()
	if *debt {
		return runDebt(loader, targets, root, cwd, stdout, stderr)
	}

	rules := lint.Rules()
	var diags []lint.Diagnostic
	loadFailed := false
	for _, t := range targets {
		pkg, err := loader.Load(t[0], t[1])
		if err != nil {
			fprintln(stderr, "fivealarmsvet:", err)
			loadFailed = true
			continue
		}
		diags = append(diags, lint.Check(pkg, rules)...)
	}

	// Render file names relative to the working directory so findings
	// are clickable from the invocation site, then re-normalize: the
	// per-package sort does not survive concatenation, and SortDiagnostics
	// also drops duplicates if overlapping rules reported the same fact.
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
	diags = lint.SortDiagnostics(diags)
	switch {
	case *sarifOut:
		doc, err := lint.SARIFReport(diags, rules, cwd)
		if err != nil {
			fprintln(stderr, "fivealarmsvet:", err)
			return 2
		}
		if _, err := stdout.Write(append(doc, '\n')); err != nil {
			fprintln(stderr, "fivealarmsvet:", err)
			return 2
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fprintln(stderr, "fivealarmsvet:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fprintln(stdout, d)
		}
	}
	switch {
	case loadFailed:
		return 2
	case len(diags) > 0:
		return 1
	}
	return 0
}

// runWriteAPILock regenerates the wire-contract lockfile next to the
// serve/api sources.
func runWriteAPILock(all [][2]string, stdout, stderr *os.File) int {
	for _, t := range all {
		if t[1] != "fivealarms/internal/serve/api" {
			continue
		}
		pkg, err := lint.NewLoader().Load(t[0], t[1])
		if err != nil {
			fprintln(stderr, "fivealarmsvet:", err)
			return 2
		}
		if err := lint.WriteAPILock(pkg); err != nil {
			fprintln(stderr, "fivealarmsvet:", err)
			return 2
		}
		fprintf(stdout, "wrote %s\n", filepath.Join(t[0], lint.APILockFile))
		return 0
	}
	fprintln(stderr, "fivealarmsvet: module has no fivealarms/internal/serve/api package")
	return 2
}

// runDebt prints the suppression-debt audit for the selected targets.
// Always exits 0 on success: live, reasoned suppressions are legal —
// this mode makes them auditable, not forbidden.
func runDebt(loader *lint.Loader, targets [][2]string, root, cwd string, stdout, stderr *os.File) int {
	var entries []lint.DebtEntry
	loadFailed := false
	for _, t := range targets {
		pkg, err := loader.Load(t[0], t[1])
		if err != nil {
			fprintln(stderr, "fivealarmsvet:", err)
			loadFailed = true
			continue
		}
		for _, a := range lint.CollectAllows(pkg) {
			committed, _ := lint.AllowAge(root, a)
			if rel, err := filepath.Rel(cwd, a.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				a.Pos.Filename = rel
			}
			entries = append(entries, lint.DebtEntry{Allow: a, Committed: committed})
		}
	}
	if loadFailed {
		return 2
	}
	now := time.Now() //fivealarms:allow(seededrand) suppression ages are wall-clock by definition; -debt is a reporting mode and never feeds results
	if _, err := io.WriteString(stdout, lint.DebtReport(entries, now)); err != nil {
		fprintln(stderr, "fivealarmsvet:", err)
		return 2
	}
	return 0
}

// selectTargets filters the discovered (dir, importPath) pairs by the
// command-line patterns. Supported patterns: none for the whole
// module, "dir/..." for a subtree ("./..." is the subtree at the
// working directory, i.e. the whole module when run from the root),
// and plain directories.
func selectTargets(all [][2]string, patterns []string, root, cwd string) ([][2]string, error) {
	if len(patterns) == 0 {
		return all, nil
	}
	var out [][2]string
	seen := map[string]bool{}
	for _, pat := range patterns {
		if pat == "..." {
			return all, nil
		}
		subtree := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			subtree = true
			pat = rest
			if pat == "." && cwd == root {
				return all, nil
			}
		}
		abs := pat
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, pat)
		}
		matched := false
		for _, t := range all {
			if t[0] == abs || (subtree && strings.HasPrefix(t[0], abs+string(filepath.Separator))) {
				if !seen[t[1]] {
					seen[t[1]] = true
					out = append(out, t)
				}
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages under %s", pat, root)
		}
	}
	return out, nil
}
