// Command fivealarmsvet runs the fivealarms static-analysis suite
// (internal/lint) over the module: the determinism, failure-model,
// float-equality, context-flow, copy-safety, and test-only-import
// contracts the reproduction's numbers depend on.
//
// Usage:
//
//	fivealarmsvet [-json] [-rules] [packages]
//
// With no arguments (or "./...") the whole module is checked. Explicit
// package directories ("./internal/geom") restrict the run. The exit
// code is 0 when clean, 1 when findings are reported, and 2 when a
// package fails to load. Findings are suppressed only by annotated
// //fivealarms:allow(<rule>) <reason> comments; see DESIGN.md §6.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fivealarms/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("fivealarmsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	listRules := fs.Bool("rules", false, "print the rule inventory and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listRules {
		for _, r := range lint.Rules() {
			fmt.Fprintf(stdout, "%-16s %s\n", r.Name, r.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "fivealarmsvet:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "fivealarmsvet:", err)
		return 2
	}
	_, all, err := lint.DiscoverModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "fivealarmsvet:", err)
		return 2
	}
	targets, err := selectTargets(all, fs.Args(), root, cwd)
	if err != nil {
		fmt.Fprintln(stderr, "fivealarmsvet:", err)
		return 2
	}

	loader := lint.NewLoader()
	rules := lint.Rules()
	var diags []lint.Diagnostic
	loadFailed := false
	for _, t := range targets {
		pkg, err := loader.Load(t[0], t[1])
		if err != nil {
			fmt.Fprintln(stderr, "fivealarmsvet:", err)
			loadFailed = true
			continue
		}
		diags = append(diags, lint.Check(pkg, rules)...)
	}

	// Render file names relative to the working directory so findings
	// are clickable from the invocation site.
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "fivealarmsvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	switch {
	case loadFailed:
		return 2
	case len(diags) > 0:
		return 1
	}
	return 0
}

// selectTargets filters the discovered (dir, importPath) pairs by the
// command-line patterns. Supported patterns: none for the whole
// module, "dir/..." for a subtree ("./..." is the subtree at the
// working directory, i.e. the whole module when run from the root),
// and plain directories.
func selectTargets(all [][2]string, patterns []string, root, cwd string) ([][2]string, error) {
	if len(patterns) == 0 {
		return all, nil
	}
	var out [][2]string
	seen := map[string]bool{}
	for _, pat := range patterns {
		if pat == "..." {
			return all, nil
		}
		subtree := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			subtree = true
			pat = rest
			if pat == "." && cwd == root {
				return all, nil
			}
		}
		abs := pat
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, pat)
		}
		matched := false
		for _, t := range all {
			if t[0] == abs || (subtree && strings.HasPrefix(t[0], abs+string(filepath.Separator))) {
				if !seen[t[1]] {
					seen[t[1]] = true
					out = append(out, t)
				}
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages under %s", pat, root)
		}
	}
	return out, nil
}
