package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"fivealarms/internal/lint"
)

// capture runs fn with stdout and stderr redirected to temp files and
// returns what was written.
func capture(t *testing.T, fn func(stdout, stderr *os.File)) (string, string) {
	t.Helper()
	mk := func(name string) *os.File {
		f, err := os.CreateTemp(t.TempDir(), name)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	so, se := mk("stdout"), mk("stderr")
	defer so.Close()
	defer se.Close()
	fn(so, se)
	read := func(f *os.File) string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	return read(so), read(se)
}

func TestRulesFlagListsSuite(t *testing.T) {
	var code int
	stdout, _ := capture(t, func(so, se *os.File) { code = run([]string{"-rules"}, so, se) })
	if code != 0 {
		t.Fatalf("-rules exit = %d, want 0", code)
	}
	for _, r := range lint.Rules() {
		if !strings.Contains(stdout, r.Name) {
			t.Errorf("-rules output is missing %q:\n%s", r.Name, stdout)
		}
	}
}

func TestJSONOutputOnCleanPackage(t *testing.T) {
	var code int
	stdout, stderr := capture(t, func(so, se *os.File) {
		code = run([]string{"-json", "../../internal/rng"}, so, se)
	})
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostics array: %v\n%s", err, stdout)
	}
	if len(diags) != 0 {
		t.Errorf("internal/rng must be lint-clean, got %v", diags)
	}
}

func TestUnknownPatternFails(t *testing.T) {
	var code int
	_, stderr := capture(t, func(so, se *os.File) {
		code = run([]string{"./no/such/dir"}, so, se)
	})
	if code != 2 {
		t.Fatalf("exit = %d, want 2 for a pattern matching nothing", code)
	}
	if !strings.Contains(stderr, "matches no packages") {
		t.Errorf("stderr should name the failure: %s", stderr)
	}
}

func TestSARIFOutputOnCleanPackage(t *testing.T) {
	var code int
	stdout, stderr := capture(t, func(so, se *os.File) {
		code = run([]string{"-sarif", "../../internal/rng"}, so, se)
	})
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("-sarif output is not JSON: %v\n%s", err, stdout)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Errorf("version %q with %d runs, want 2.1.0 and one run", doc.Version, len(doc.Runs))
	}
	if len(doc.Runs) == 1 && doc.Runs[0].Results == nil {
		t.Errorf("clean run must carry an empty results array, not null")
	}
}

func TestDebtReportsLiveSuppressions(t *testing.T) {
	var code int
	stdout, stderr := capture(t, func(so, se *os.File) {
		code = run([]string{"-debt", "../../internal/wildfire"}, so, se)
	})
	if code != 0 {
		t.Fatalf("-debt exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "[errflow]") || !strings.Contains(stdout, "live suppressions") {
		t.Errorf("-debt output missing the wildfire errflow waiver:\n%s", stdout)
	}
}

// TestWriteAPILockIsStable runs the regeneration path against the
// committed lockfile: on an unchanged wire contract it must be a
// byte-level no-op, which is exactly what CI's drift check relies on.
func TestWriteAPILockIsStable(t *testing.T) {
	lockPath := "../../internal/serve/api/api.lock"
	before, err := os.ReadFile(lockPath)
	if err != nil {
		t.Fatalf("the lockfile must be committed: %v", err)
	}
	var code int
	stdout, stderr := capture(t, func(so, se *os.File) {
		code = run([]string{"-write-apilock"}, so, se)
	})
	if code != 0 {
		t.Fatalf("-write-apilock exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "wrote") {
		t.Errorf("-write-apilock should confirm the write: %s", stdout)
	}
	after, err := os.ReadFile(lockPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Errorf("regeneration on an unchanged contract rewrote the lockfile")
	}
}

func TestSubtreePattern(t *testing.T) {
	var code int
	stdout, stderr := capture(t, func(so, se *os.File) {
		code = run([]string{"../../internal/refimpl/..."}, so, se)
	})
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s, stdout: %s)", code, stderr, stdout)
	}
}
