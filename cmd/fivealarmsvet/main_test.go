package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"fivealarms/internal/lint"
)

// capture runs fn with stdout and stderr redirected to temp files and
// returns what was written.
func capture(t *testing.T, fn func(stdout, stderr *os.File)) (string, string) {
	t.Helper()
	mk := func(name string) *os.File {
		f, err := os.CreateTemp(t.TempDir(), name)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	so, se := mk("stdout"), mk("stderr")
	defer so.Close()
	defer se.Close()
	fn(so, se)
	read := func(f *os.File) string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	return read(so), read(se)
}

func TestRulesFlagListsSuite(t *testing.T) {
	var code int
	stdout, _ := capture(t, func(so, se *os.File) { code = run([]string{"-rules"}, so, se) })
	if code != 0 {
		t.Fatalf("-rules exit = %d, want 0", code)
	}
	for _, r := range lint.Rules() {
		if !strings.Contains(stdout, r.Name) {
			t.Errorf("-rules output is missing %q:\n%s", r.Name, stdout)
		}
	}
}

func TestJSONOutputOnCleanPackage(t *testing.T) {
	var code int
	stdout, stderr := capture(t, func(so, se *os.File) {
		code = run([]string{"-json", "../../internal/rng"}, so, se)
	})
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostics array: %v\n%s", err, stdout)
	}
	if len(diags) != 0 {
		t.Errorf("internal/rng must be lint-clean, got %v", diags)
	}
}

func TestUnknownPatternFails(t *testing.T) {
	var code int
	_, stderr := capture(t, func(so, se *os.File) {
		code = run([]string{"./no/such/dir"}, so, se)
	})
	if code != 2 {
		t.Fatalf("exit = %d, want 2 for a pattern matching nothing", code)
	}
	if !strings.Contains(stderr, "matches no packages") {
		t.Errorf("stderr should name the failure: %s", stderr)
	}
}

func TestSubtreePattern(t *testing.T) {
	var code int
	stdout, stderr := capture(t, func(so, se *os.File) {
		code = run([]string{"../../internal/refimpl/..."}, so, se)
	})
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s, stdout: %s)", code, stderr, stdout)
	}
}
