// Command fivealarmsd serves the fivealarms study over HTTP: the v1
// JSON risk-query API (see internal/serve/api for the wire contract).
//
// Usage:
//
//	fivealarmsd [flags]
//
// The server builds its first study lazily on first request; studies
// for other seeds (?seed=N) are built on demand and held in a bounded
// LRU. Serving is overload-resilient: per-route deadlines, weighted
// admission control with bounded queueing (-inflight, -queue), a
// circuit breaker around study builds, and degraded last-known-good
// responses — see DESIGN.md "Overload & degradation policy".
// SIGINT/SIGTERM triggers a graceful drain: the listener closes,
// in-flight requests finish (up to -grace), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fivealarms"
	"fivealarms/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8417", "listen address (host:port; port 0 picks a free port)")
		seed     = flag.Uint64("seed", 7, "default master random seed")
		cell     = flag.Float64("cell", 10000, "world raster cell size in meters")
		tx       = flag.Int("transceivers", 150000, "synthetic OpenCelliD snapshot size")
		fires    = flag.Int("fires", 60, "mapped fires per simulated season")
		shards   = flag.Int("shards", 0, "shard the transceiver-axis analyses over this many CONUS row bands (0 = monolithic)")
		snapshot = flag.String("snapshot", "", "warm-load the transceiver layer from this columnar snapshot file")

		studies = flag.Int("studies", 4, "max studies resident in the LRU cache")
		grace   = flag.Duration("grace", 30*time.Second, "graceful shutdown drain budget")
		warm    = flag.Bool("warm", false, "build the default study before accepting connections")

		readDeadline  = flag.Duration("read-deadline", 0, "deadline for cheap read endpoints (0 = server default)")
		buildDeadline = flag.Duration("build-deadline", 0, "deadline for expensive endpoints like /v1/extend (0 = server default)")
		inflight      = flag.Int("inflight", 0, "admission weight capacity (0 = server default)")
		queue         = flag.Int("queue", 0, "admission wait-queue bound; arrivals beyond it get 429 (0 = server default)")
		breakerTrips  = flag.Int("breaker-threshold", 0, "consecutive build failures that open the build circuit (0 = server default)")
		breakerWait   = flag.Duration("breaker-backoff", 0, "base open-circuit backoff, doubled per reopen (0 = server default)")
	)
	flag.Parse()
	opts := serve.Options{
		Config: fivealarms.Config{
			Seed:                 *seed,
			CellSizeM:            *cell,
			Transceivers:         *tx,
			MappedFiresPerSeason: *fires,
			Shards:               *shards,
			SnapshotPath:         *snapshot,
		},
		MaxStudies:       *studies,
		ReadDeadline:     *readDeadline,
		BuildDeadline:    *buildDeadline,
		MaxInFlight:      *inflight,
		MaxQueue:         *queue,
		BreakerThreshold: *breakerTrips,
		BreakerBackoff:   *breakerWait,
	}
	if err := run(*addr, opts, *grace, *warm); err != nil {
		fmt.Fprintln(os.Stderr, "fivealarmsd:", err)
		os.Exit(1)
	}
}

func run(addr string, opts serve.Options, grace time.Duration, warm bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv, err := serve.New(ctx, opts)
	if err != nil {
		return err
	}
	if warm {
		fmt.Fprintln(os.Stderr, "fivealarmsd: warming default study")
		if err := srv.Warm(ctx); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// Hardened server (slowloris timeouts, header cap); deliberately no
	// BaseContext tied to the signal context: Shutdown below drains
	// in-flight requests instead of aborting them.
	hs := serve.NewHTTPServer(srv.Handler())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }() //fivealarms:allow(goroleak) Serve returns when Shutdown below closes the listener, so the goroutine's lifetime is bounded by this function
	fmt.Printf("listening on http://%s\n", ln.Addr())

	select {
	case err := <-errc:
		return err // listener failed before any shutdown signal
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills hard
	fmt.Fprintln(os.Stderr, "fivealarmsd: draining")

	dctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "fivealarmsd: drained, bye")
	return nil
}
