// Command fivealarmsd serves the fivealarms study over HTTP: the v1
// JSON risk-query API (see internal/serve/api for the wire contract).
//
// Usage:
//
//	fivealarmsd [flags]
//
// The server builds its first study lazily on first request; studies
// for other seeds (?seed=N) are built on demand and held in a bounded
// LRU. SIGINT/SIGTERM triggers a graceful drain: the listener closes,
// in-flight requests finish (up to -grace), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fivealarms"
	"fivealarms/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8417", "listen address (host:port; port 0 picks a free port)")
		seed    = flag.Uint64("seed", 7, "default master random seed")
		cell    = flag.Float64("cell", 10000, "world raster cell size in meters")
		tx      = flag.Int("transceivers", 150000, "synthetic OpenCelliD snapshot size")
		fires   = flag.Int("fires", 60, "mapped fires per simulated season")
		studies = flag.Int("studies", 4, "max studies resident in the LRU cache")
		grace   = flag.Duration("grace", 30*time.Second, "graceful shutdown drain budget")
		warm    = flag.Bool("warm", false, "build the default study before accepting connections")
	)
	flag.Parse()
	if err := run(*addr, fivealarms.Config{
		Seed:                 *seed,
		CellSizeM:            *cell,
		Transceivers:         *tx,
		MappedFiresPerSeason: *fires,
	}, *studies, *grace, *warm); err != nil {
		fmt.Fprintln(os.Stderr, "fivealarmsd:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg fivealarms.Config, maxStudies int, grace time.Duration, warm bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv, err := serve.New(ctx, serve.Options{Config: cfg, MaxStudies: maxStudies})
	if err != nil {
		return err
	}
	if warm {
		fmt.Fprintln(os.Stderr, "fivealarmsd: warming default study")
		if err := srv.Warm(ctx); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// Deliberately no BaseContext tied to the signal context: Shutdown
	// below drains in-flight requests instead of aborting them.
	hs := &http.Server{Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Printf("listening on http://%s\n", ln.Addr())

	select {
	case err := <-errc:
		return err // listener failed before any shutdown signal
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills hard
	fmt.Fprintln(os.Stderr, "fivealarmsd: draining")

	dctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "fivealarmsd: drained, bye")
	return nil
}
