package fivealarms

// BenchmarkStudyColdWarm measures the memoization contract of the study
// pipeline (see README "Performance & concurrency"): the cold path
// builds a Study and runs Table1 + Validate + CaseStudy from scratch
// (layer builds plus 20 fire-season simulations); the warm path re-runs
// the same three analyses on an already-primed Study, where every
// simulated season is a cache hit. The acceptance bar for the pipeline
// is warm >= 10x faster than cold; `make bench-pipeline` records both
// into BENCH_pipeline.json.

import "testing"

// benchPipelineCfg mirrors the shared bench fixture scale.
var benchPipelineCfg = Config{Seed: 7, CellSizeM: 20000, Transceivers: 60000, MappedFiresPerSeason: 12}

// runHeadlineAnalyses is the cold/warm workload: the three analyses the
// paper's pre-pipeline code paid three fire-simulation passes for.
func runHeadlineAnalyses(b *testing.B, s *Study) {
	if rows := s.Table1(); len(rows) != 19 {
		b.Fatalf("table1 years = %d", len(rows))
	}
	if v := s.Validate(); v.InPerimeter == 0 {
		b.Fatal("validation empty")
	}
	if cs := s.CaseStudy(); cs.PeakOut == 0 {
		b.Fatal("case study empty")
	}
}

func BenchmarkStudyColdWarm(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runHeadlineAnalyses(b, NewStudy(benchPipelineCfg))
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := NewStudy(benchPipelineCfg)
		runHeadlineAnalyses(b, s) // prime every memo cell
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runHeadlineAnalyses(b, s)
		}
	})
}

// BenchmarkStudyBuild isolates the layer-build pipeline itself: the
// parallel dependency-graph build against the serial escape hatch.
func BenchmarkStudyBuild(b *testing.B) {
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if s := NewStudy(benchPipelineCfg); s.Analyzer == nil {
				b.Fatal("analyzer missing")
			}
		}
	})
	b.Run("serial", func(b *testing.B) {
		cfg := benchPipelineCfg
		cfg.PipelineSerial = true
		for i := 0; i < b.N; i++ {
			if s := NewStudy(cfg); s.Analyzer == nil {
				b.Fatal("analyzer missing")
			}
		}
	})
}
