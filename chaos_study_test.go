package fivealarms

// Fault-containment tests for the public Study surface: every pipeline
// task is chaos-tested with injected panics, errors and cancellation
// (via the internal/faults harness hooked into the build graph), and in
// every case NewStudyWithOptions must return a descriptive error with a
// nil Study — no crash, no goroutine leak, no partially built state.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"fivealarms/internal/faults"
	"fivealarms/internal/pipeline"
)

// chaosOptions assembles the stress-scale configuration for one chaos
// build; serial selects the RunSerialContext path.
func chaosOptions(serial bool, extra ...Option) []Option {
	opts := []Option{WithConfig(stressCfg)}
	if serial {
		opts = append(opts, WithSerialPipeline())
	}
	return append(opts, extra...)
}

// installHook swaps the build-graph injection hook for the test's
// lifetime. The hook is package state, so chaos tests must not run in
// parallel with each other (none call t.Parallel).
func installHook(t *testing.T, hook func(string) error) {
	t.Helper()
	prev := buildFaultHook
	buildFaultHook = hook
	t.Cleanup(func() { buildFaultHook = prev })
}

// buildTaskNames discovers the pipeline's task names by running one
// clean build with a recording hook, so the chaos sweep stays in sync
// with the graph definition without a hand-maintained list.
func buildTaskNames(t *testing.T) []string {
	t.Helper()
	var mu sync.Mutex
	var names []string
	installHook(t, func(task string) error {
		mu.Lock()
		names = append(names, task)
		mu.Unlock()
		return nil
	})
	if _, err := NewStudyWithOptions(chaosOptions(false)...); err != nil {
		t.Fatal(err)
	}
	buildFaultHook = nil
	if len(names) == 0 {
		t.Fatal("recording hook saw no tasks")
	}
	return names
}

func studyAssertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStudyChaosPanicEveryTask is the acceptance-criterion sweep: inject
// a panic into every build task, one at a time, in both schedules. Each
// run must surface a pipeline.PanicError naming the task, return a nil
// Study, and leak no goroutines.
func TestStudyChaosPanicEveryTask(t *testing.T) {
	names := buildTaskNames(t)
	for _, serial := range []bool{false, true} {
		for _, victim := range names {
			time.Sleep(time.Millisecond)
			before := runtime.NumGoroutine()
			in := faults.New(1)
			in.PanicOn(victim, nil)
			installHook(t, in.Hook())
			s, err := NewStudyWithOptions(chaosOptions(serial)...)
			if s != nil {
				t.Fatalf("serial=%v victim=%s: partially built Study escaped", serial, victim)
			}
			var pe *pipeline.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("serial=%v victim=%s: err = %v, want pipeline.PanicError", serial, victim, err)
			}
			if pe.Task != victim {
				t.Errorf("serial=%v victim=%s: PanicError.Task = %q", serial, victim, pe.Task)
			}
			studyAssertNoGoroutineLeak(t, before)
		}
	}
}

// TestStudyChaosErrorInjection: injected task errors surface through
// NewStudyWithOptions wrapped with the task name, in both schedules.
func TestStudyChaosErrorInjection(t *testing.T) {
	for _, serial := range []bool{false, true} {
		in := faults.New(1)
		in.ErrorOn("cellnet", nil)
		installHook(t, in.Hook())
		s, err := NewStudyWithOptions(chaosOptions(serial)...)
		if s != nil || err == nil {
			t.Fatalf("serial=%v: s=%v err=%v", serial, s != nil, err)
		}
		if !errors.Is(err, faults.ErrInjected) {
			t.Errorf("serial=%v: injected sentinel lost: %v", serial, err)
		}
		if !strings.Contains(err.Error(), `"cellnet"`) {
			t.Errorf("serial=%v: error does not name the task: %v", serial, err)
		}
	}
}

// TestStudyBuildCancellation: WithContext makes the build cancellable.
// A pre-cancelled context builds nothing; a context cancelled mid-build
// (from inside the first task, via the hook) stops scheduling and
// surfaces ctx.Err() in the chain. Either way the Study is nil.
func TestStudyBuildCancellation(t *testing.T) {
	for _, serial := range []bool{false, true} {
		pre, cancel := context.WithCancel(context.Background())
		cancel()
		s, err := NewStudyWithOptions(chaosOptions(serial, WithContext(pre))...)
		if s != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("serial=%v pre-cancel: s=%v err=%v", serial, s != nil, err)
		}

		ctx, cancelMid := context.WithCancel(context.Background())
		installHook(t, func(task string) error {
			if task == "world" {
				cancelMid()
			}
			return nil
		})
		start := time.Now()
		s, err = NewStudyWithOptions(chaosOptions(serial, WithContext(ctx))...)
		if s != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("serial=%v mid-cancel: s=%v err=%v", serial, s != nil, err)
		}
		if d := time.Since(start); d > 30*time.Second {
			t.Errorf("serial=%v: cancelled build took %v", serial, d)
		}
		buildFaultHook = nil
	}
}

// TestStudyChaosCleanRunIdentical: with the harness attached but firing
// nothing, the build must be bit-identical to an uninstrumented one —
// injection off may not perturb results.
func TestStudyChaosCleanRunIdentical(t *testing.T) {
	in := faults.New(5) // no rules, no rates: fires nothing
	installHook(t, in.Hook())
	instrumented, err := NewStudyWithOptions(chaosOptions(false)...)
	if err != nil {
		t.Fatal(err)
	}
	buildFaultHook = nil
	clean := NewStudy(stressCfg)
	a, b := analysisFingerprints(instrumented), analysisFingerprints(clean)
	for name, want := range b {
		if a[name] != want {
			t.Errorf("%s differs with inert chaos harness attached", name)
		}
	}
	if len(in.Events()) != 0 {
		t.Errorf("inert injector fired: %v", in.Events())
	}
}
