package fivealarms

import (
	"fmt"
	"os"

	"fivealarms/internal/cellnet"
	"fivealarms/internal/conus"
)

// loadSnapshotDataset warm-loads the transceiver layer from a columnar
// snapshot file (Config.SnapshotPath). Strict whole-file decode:
// header, checksum, per-row validation — a corrupt or truncated file
// fails the build rather than producing a short dataset.
func loadSnapshotDataset(path string, w *conus.World) (*cellnet.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening transceiver snapshot: %w", err)
	}
	defer f.Close()
	d, err := cellnet.ReadSnapshot(f, w)
	if err != nil {
		return nil, fmt.Errorf("loading transceiver snapshot %s: %w", path, err)
	}
	return d, nil
}

// WriteSnapshot saves the study's transceiver layer as a columnar
// snapshot file, suitable for Config.SnapshotPath warm loads. A study
// built from the written file with the same world configuration is
// bit-identical to this one (the snapshot stores projected positions
// exactly). The file is written atomically enough for local use: on
// encode error the partial file is removed.
func (s *Study) WriteSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating transceiver snapshot: %w", err)
	}
	if err := cellnet.StoreOf(s.Data.T).WriteSnapshot(f); err != nil {
		f.Close()       //fivealarms:allow(errflow) best-effort cleanup; the write error above is the one worth returning
		os.Remove(path) //fivealarms:allow(errflow) best-effort cleanup; the write error above is the one worth returning
		return fmt.Errorf("writing transceiver snapshot %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path) //fivealarms:allow(errflow) best-effort cleanup; the close error above is the one worth returning
		return fmt.Errorf("closing transceiver snapshot %s: %w", path, err)
	}
	return nil
}
