// Package fivealarms reproduces "Five Alarms: Assessing the Vulnerability
// of US Cellular Communication Infrastructure to Wildfires" (Anderson,
// Barford & Barford, IMC 2020) as a self-contained Go library.
//
// The package builds a deterministic synthetic analog of the paper's three
// data layers — an OpenCelliD-style transceiver database, a GeoMAC-style
// historical fire catalog produced by a fire-spread simulator, and a USFS
// Wildfire-Hazard-Potential-style raster — over a shared "digital CONUS"
// (real city locations, state geography and provider identities; synthetic
// geometry). It then runs the paper's overlay analyses: the historical
// perimeter join (Table 1), the provider and radio-technology breakdowns
// (Tables 2-3), the WHP exposure and per-capita rankings (Figures 6-9),
// the population-impact and metro analyses (Figures 10-13), the 2019
// hold-out validation and half-mile extension (§3.4, §3.8), the
// fall-2019 PSPS case study (Figure 5), and the ecoregion future-risk
// projection (Figures 14-15).
//
// # Quick start
//
//	study, err := fivealarms.NewStudyWithOptions(fivealarms.WithSeed(42))
//	if err != nil { ... }
//	overlay := study.WHPOverlay()
//	fmt.Println(overlay.AtRisk(), "transceivers in moderate+ hazard")
//
// Everything is deterministic in Config: identical configurations produce
// identical worlds, datasets, fires and results, whether the layers are
// built by the parallel pipeline or the serial fallback.
//
// # Concurrency
//
// A Study is safe for concurrent use: any number of goroutines may run
// any mix of analysis methods on one Study at the same time. The
// expensive derived products — the simulated fire seasons, the
// SLC-Denver corridor, the WHP overlay, the perimeter union masks, the
// extension experiments — are computed once per Study on first use
// (singleflight) and shared by every caller; see the README's
// "Performance & concurrency" section for the cold/warm cost model.
package fivealarms

import (
	"context"
	"errors"
	"fmt"
	"math"

	"fivealarms/internal/cellnet"
	"fivealarms/internal/census"
	"fivealarms/internal/conus"
	"fivealarms/internal/ecoregion"
	"fivealarms/internal/pipeline"
	"fivealarms/internal/powergrid"
	"fivealarms/internal/raster"
	"fivealarms/internal/risk"
	"fivealarms/internal/whp"
	"fivealarms/internal/wildfire"
	"fivealarms/internal/wui"
)

// Config sizes and seeds a study. The zero value is a usable
// laptop-scale configuration; Full-scale reproduction settings are
// documented per field.
type Config struct {
	// Seed drives every stochastic choice. Defaults to 1.
	Seed uint64
	// CellSizeM is the world raster resolution in meters. Defaults to
	// 10_000 (10 km). The USFS WHP ships at 270 m; 2_700 is a practical
	// full-scale setting.
	CellSizeM float64
	// Transceivers is the synthetic OpenCelliD snapshot size. Defaults to
	// 150_000. The real snapshot has 5,364,949.
	Transceivers int
	// MappedFiresPerSeason bounds fire-simulation cost. Defaults to 40.
	MappedFiresPerSeason int
	// PipelineSerial is the debugging escape hatch: build the layers and
	// simulate the historical seasons one at a time instead of across
	// worker goroutines. Results are bit-identical either way; only
	// wall-clock time changes.
	PipelineSerial bool
	// RasterWorkers bounds the parallelism of the tiled raster kernels
	// (perimeter-union fills, distance transforms, dilations, contour
	// tracing). 0 selects GOMAXPROCS (or serial when PipelineSerial is
	// set); 1 forces the serial kernels. Results are bit-identical at
	// any setting; only wall-clock time changes.
	RasterWorkers int
	// Shards selects the sharded execution path for the transceiver-axis
	// analyses (Table 1-3, the hold-out validation, the perimeter union
	// masks): the fleet is partitioned into this many CONUS row bands,
	// each band builds through its own pipeline tasks with a bounded
	// transient footprint, and the partial products stream-merge in band
	// order. Results are bit-identical to the monolithic build at any
	// shard count (see DESIGN.md §10). 0 (the default) builds
	// monolithically.
	Shards int
	// SnapshotPath, when non-empty, warm-loads the transceiver layer
	// from a columnar snapshot file (cellnet's "FA5C" format, written by
	// Study.WriteSnapshot or `fivealarms -save-snapshot`) instead of
	// generating it. The snapshot stores projected positions bit-for-
	// bit, so a warm load of a snapshot written from the same Config is
	// bit-identical to the cold build it replaces. Transceivers is
	// ignored for sizing when a snapshot loads (the file's row count
	// wins).
	SnapshotPath string

	// ctx, when set via WithContext, governs cancellation of the layer
	// build. It is consulted only during NewStudyWithOptions and never
	// retained by the returned Study.
	ctx context.Context
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CellSizeM <= 0 {
		c.CellSizeM = 10000
	}
	if c.Transceivers <= 0 {
		c.Transceivers = 150000
	}
	if c.MappedFiresPerSeason <= 0 {
		c.MappedFiresPerSeason = 40
	}
	return c
}

// Validation bounds: a national raster finer than minCellSizeM exhausts
// memory (the CONUS window is ~4.6M x 2.9M meters), one coarser than
// maxCellSizeM degenerates below state scale.
const (
	minCellSizeM     = 100
	maxCellSizeM     = 1e6
	maxTransceivers  = 100_000_000
	maxMappedFires   = 100_000
	maxRasterWorkers = 4096
	maxShards        = 4096
)

// Validate rejects configurations that withDefaults would otherwise
// accept silently: NaN/Inf or negative dimensions, and absurd sizes that
// would exhaust memory or degenerate the analysis. Zero values are valid
// (they select the documented defaults). Every offending field is
// reported — the returned error joins one error per violation
// (errors.Join), so a caller fixing a rejected configuration sees the
// whole list at once instead of one field per attempt.
// NewStudyWithOptions and the command-line binaries surface these
// errors; NewStudy retains the legacy lenient behavior for
// compatibility.
func (c Config) Validate() error {
	var errs []error
	switch {
	case math.IsNaN(c.CellSizeM) || math.IsInf(c.CellSizeM, 0):
		errs = append(errs, fmt.Errorf("fivealarms: CellSizeM must be finite, got %v", c.CellSizeM))
	case c.CellSizeM < 0:
		errs = append(errs, fmt.Errorf("fivealarms: CellSizeM must be >= 0, got %v", c.CellSizeM))
	case c.CellSizeM > 0 && c.CellSizeM < minCellSizeM:
		errs = append(errs, fmt.Errorf("fivealarms: CellSizeM %v below the %v m national-raster minimum (use ExtendWith / metro windows for finer analysis)", c.CellSizeM, float64(minCellSizeM)))
	case c.CellSizeM > maxCellSizeM:
		errs = append(errs, fmt.Errorf("fivealarms: CellSizeM %v above the %v m maximum", c.CellSizeM, float64(maxCellSizeM)))
	}
	switch {
	case c.Transceivers < 0:
		errs = append(errs, fmt.Errorf("fivealarms: Transceivers must be >= 0, got %d", c.Transceivers))
	case c.Transceivers > maxTransceivers:
		errs = append(errs, fmt.Errorf("fivealarms: Transceivers %d above the %d maximum", c.Transceivers, maxTransceivers))
	}
	switch {
	case c.MappedFiresPerSeason < 0:
		errs = append(errs, fmt.Errorf("fivealarms: MappedFiresPerSeason must be >= 0, got %d", c.MappedFiresPerSeason))
	case c.MappedFiresPerSeason > maxMappedFires:
		errs = append(errs, fmt.Errorf("fivealarms: MappedFiresPerSeason %d above the %d maximum", c.MappedFiresPerSeason, maxMappedFires))
	}
	switch {
	case c.RasterWorkers < 0:
		errs = append(errs, fmt.Errorf("fivealarms: RasterWorkers must be >= 0, got %d", c.RasterWorkers))
	case c.RasterWorkers > maxRasterWorkers:
		errs = append(errs, fmt.Errorf("fivealarms: RasterWorkers %d above the %d maximum", c.RasterWorkers, maxRasterWorkers))
	}
	switch {
	case c.Shards < 0:
		errs = append(errs, fmt.Errorf("fivealarms: Shards must be >= 0, got %d", c.Shards))
	case c.Shards > maxShards:
		errs = append(errs, fmt.Errorf("fivealarms: Shards %d above the %d maximum", c.Shards, maxShards))
	}
	return errors.Join(errs...)
}

// PaperScale returns the configuration approximating the paper's actual
// data volumes: a 5.36M-transceiver snapshot on a 2.7 km national raster.
// Expect several GB of memory and minutes of generation time.
func PaperScale(seed uint64) Config {
	return Config{
		Seed:                 seed,
		CellSizeM:            2700,
		Transceivers:         5364949,
		MappedFiresPerSeason: 400,
	}
}

// Study bundles the generated world, data layers and the risk engine.
//
// A Study is safe for concurrent use by multiple goroutines and must not
// be copied after creation. The derived-layer accessors (History,
// Season2019, Corridor, WHPOverlay, the union masks, Extend, ExtendFine)
// memoize their results: the first caller computes, concurrent callers
// during that computation block and share it, and every later call is a
// cache hit.
type Study struct {
	Cfg      Config
	World    *conus.World
	WHP      *whp.Map
	Data     *cellnet.Dataset
	Counties *census.Counties
	Analyzer *risk.Analyzer
	Sim      *wildfire.Simulator

	// sharded, non-nil only when Config.Shards > 0, holds the stream-
	// merged transceiver-axis products the build graph computed shard by
	// shard. The memoized accessors below consult it before falling back
	// to the monolithic computation; it is immutable after build.
	sharded *shardedResults

	// Memoized derived layers (see the type comment).
	mem struct {
		history    pipeline.Cell[[]*wildfire.Season]
		season2019 pipeline.Cell[*wildfire.Season]
		corridor   pipeline.Cell[*ecoregion.Corridor]
		overlay    pipeline.Cell[*risk.WHPResult]
		unionHist  pipeline.Cell[*raster.BitGrid]
		union2019  pipeline.Cell[*raster.BitGrid]
		table1     pipeline.Cell[[]risk.YearOverlay]
		validate   pipeline.Cell[*risk.ValidationResult]
		caseStudy  pipeline.Cell[*risk.CaseStudyResult]
		extend     pipeline.Keyed[float64, *risk.ExtensionResult]
		extendFine pipeline.Keyed[[2]float64, *risk.FineExtension]
	}
}

// NewStudy builds all layers for the configuration. Out-of-range fields
// are silently defaulted (the legacy behavior); use NewStudyWithOptions
// to surface configuration errors instead.
//
// NewStudy keeps its infallible signature because its failure surface is
// provably empty for the configurations it predates: every monolithic
// layer builder below returns nil unconditionally, the task graph is
// acyclic by pipeline.Graph.Add's declared-before-use contract, no
// context reaches it (Config.ctx is settable only through WithContext),
// and no injection hook is installed outside the chaos tests. A non-nil
// error is therefore a programming error in this file, and panicking is
// the correct report. The exceptions are Config.SnapshotPath (file I/O
// can genuinely fail) and the sharded merge's internal invariants: for
// those configurations use NewStudyWithOptions, which surfaces the
// error instead.
func NewStudy(cfg Config) *Study {
	cfg.ctx = nil
	s, err := build(cfg.withDefaults())
	if err != nil {
		panic(err)
	}
	return s
}

// buildFaultHook, when non-nil, is installed as the chaos-injection
// hook on every study build graph. It exists solely for the fault-
// containment tests in this package and must stay nil in production
// paths (nothing outside _test files assigns it).
var buildFaultHook func(task string) error

// build constructs the study layers over the dependency-graph executor:
// once the shared world exists, the WHP raster, the transceiver snapshot
// and the county synthesis build concurrently; the fire simulator and
// the risk engine follow as their inputs complete. Each layer is a pure
// function of its declared inputs, so the parallel schedule produces the
// same Study as the serial one bit for bit.
//
// A non-nil error means no usable Study exists: cancellation of cfg.ctx,
// a contained panic (pipeline.PanicError) or an injected fault. The
// partially built value never escapes.
func build(cfg Config) (*Study, error) {
	ctx := cfg.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Study{Cfg: cfg}
	s.Cfg.ctx = nil // the Study must not retain the build context
	g := pipeline.New(0)
	if buildFaultHook != nil {
		g.SetInjectionHook(buildFaultHook)
	}
	g.Add("world", func() error {
		s.World = conus.Build(conus.Config{Seed: cfg.Seed, CellSizeM: cfg.CellSizeM})
		return nil
	})
	g.Add("whp", func() error {
		s.WHP = whp.Build(s.World, s.World.Grid, whp.Config{})
		return nil
	}, "world")
	g.Add("cellnet", func() error {
		if cfg.SnapshotPath != "" {
			data, err := loadSnapshotDataset(cfg.SnapshotPath, s.World)
			if err != nil {
				return err
			}
			s.Data = data
			return nil
		}
		s.Data = cellnet.Generate(s.World, cellnet.GenConfig{Seed: cfg.Seed, Total: cfg.Transceivers})
		return nil
	}, "world")
	g.Add("census", func() error {
		s.Counties = census.Synthesize(s.World, cfg.Seed)
		return nil
	}, "world")
	g.Add("sim", func() error {
		s.Sim = wildfire.NewSimulator(s.World, s.WHP)
		return nil
	}, "whp")
	g.Add("analyzer", func() error {
		s.Analyzer = risk.New(s.World, s.WHP, s.Data, s.Counties)
		return nil
	}, "whp", "cellnet", "census")

	var sb *shardBuild
	if cfg.Shards > 0 {
		sb = &shardBuild{s: s, cfg: cfg}
		addShardedTasks(g, sb, ctx)
	}

	var err error
	if cfg.PipelineSerial {
		err = g.RunSerialContext(ctx)
	} else {
		err = g.RunContext(ctx)
	}
	if err != nil {
		return nil, fmt.Errorf("fivealarms: building study: %w", err)
	}
	if sb != nil {
		s.sharded = &sb.res
	}
	return s, nil
}

// History simulates the calibrated 2000-2018 fire seasons. The seasons
// are simulated once per Study (in parallel unless Config.PipelineSerial
// is set — each season draws from an independent rng stream, so the
// result is identical either way) and cached for every later caller.
func (s *Study) History() []*wildfire.Season {
	return s.mem.history.Get(func() []*wildfire.Season {
		if s.sharded != nil {
			return s.sharded.history
		}
		if s.Cfg.PipelineSerial {
			return wildfire.SimulateHistory(s.Sim, s.Cfg.Seed, s.Cfg.MappedFiresPerSeason)
		}
		return wildfire.SimulateHistoryParallel(s.Sim, s.Cfg.Seed, s.Cfg.MappedFiresPerSeason, 0)
	})
}

// Season2019 simulates the hold-out validation season with the named
// anchor fires (Kincade, Getty, Saddle Ridge, Tick), once per Study.
func (s *Study) Season2019() *wildfire.Season {
	return s.mem.season2019.Get(func() *wildfire.Season {
		if s.sharded != nil {
			return s.sharded.season2019
		}
		return wildfire.Simulate2019(s.Sim, s.Cfg.Seed, s.Cfg.MappedFiresPerSeason)
	})
}

// Table1 runs the historical overlay over the 2000-2018 seasons, once
// per Study. The seasons join in parallel unless Config.PipelineSerial
// is set — each season is an independent join over read-only layers, so
// the result is identical either way. The returned slice is shared
// between callers: read-only.
func (s *Study) Table1() []risk.YearOverlay {
	return s.mem.table1.Get(func() []risk.YearOverlay {
		if s.sharded != nil {
			return s.sharded.table1
		}
		if s.Cfg.PipelineSerial {
			return s.Analyzer.HistoricalOverlayWorkers(s.History(), 1)
		}
		return s.Analyzer.HistoricalOverlay(s.History())
	})
}

// Table2 computes the provider risk breakdown.
func (s *Study) Table2() []risk.ProviderRow {
	if s.sharded != nil {
		return s.sharded.table2
	}
	return s.Analyzer.ProviderRisk()
}

// Table3 computes the radio-technology risk breakdown.
func (s *Study) Table3() []risk.RadioRow {
	if s.sharded != nil {
		return s.sharded.table3
	}
	return s.Analyzer.RadioTypeRisk()
}

// WHPOverlay computes the Figure 7-9 class/state/per-capita exposure,
// once per Study.
func (s *Study) WHPOverlay() *risk.WHPResult {
	return s.mem.overlay.Get(s.Analyzer.WHPOverlay)
}

// rasterWorkers resolves Config.RasterWorkers for the tiled raster
// kernels: PipelineSerial turns the 0 (auto) setting into the serial
// path, matching how the rest of the pipeline honors that escape hatch.
func (s *Study) rasterWorkers() int {
	if s.Cfg.RasterWorkers == 0 && s.Cfg.PipelineSerial {
		return 1
	}
	return s.Cfg.RasterWorkers
}

// HistoryUnionMask rasterizes the union of the 2000-2018 perimeters onto
// the world grid (the data behind Figure 3), once per Study.
func (s *Study) HistoryUnionMask() *raster.BitGrid {
	return s.mem.unionHist.Get(func() *raster.BitGrid {
		if s.sharded != nil {
			return s.sharded.unionHist
		}
		return s.Analyzer.FireUnionMaskWorkers(s.History(), s.rasterWorkers())
	})
}

// Season2019UnionMask rasterizes the union of the validation season's
// perimeters onto the world grid, once per Study.
func (s *Study) Season2019UnionMask() *raster.BitGrid {
	return s.mem.union2019.Get(func() *raster.BitGrid {
		if s.sharded != nil {
			return s.sharded.union2019
		}
		return s.Analyzer.FireUnionMaskWorkers([]*wildfire.Season{s.Season2019()}, s.rasterWorkers())
	})
}

// CaseStudy runs the fall-2019 PSPS simulation (Figure 5), once per
// Study. The result is shared between callers: read-only.
func (s *Study) CaseStudy() *risk.CaseStudyResult {
	return s.mem.caseStudy.Get(func() *risk.CaseStudyResult {
		return s.Analyzer.CaseStudyFall2019(s.Season2019(), powergrid.NetConfig{Seed: s.Cfg.Seed}, s.Cfg.Seed)
	})
}

// Validate runs the §3.4 hold-out validation, once per Study. The
// result is shared between callers: read-only.
func (s *Study) Validate() *risk.ValidationResult {
	return s.mem.validate.Get(func() *risk.ValidationResult {
		if s.sharded != nil {
			return s.sharded.validation
		}
		return s.Analyzer.Validate(s.Season2019())
	})
}

// Extend runs the §3.8 very-high extension experiment with the given
// buffer distance in meters on the coarse national raster.
//
// Deprecated: use ExtendWith, the unified entry point for both the
// coarse and fine extension paths — ExtendWith(ExtendOptions{DistM: d})
// is the equivalent call (and additionally resolves d <= 0 to the
// paper's half mile). Extend remains as a thin delegating shim; both
// entry points share the same per-distance memo, so mixing them never
// recomputes.
func (s *Study) Extend(distM float64) *risk.ExtensionResult {
	return s.extendCoarse(distM)
}

// ExtendFine runs the §3.8 experiment at sub-kilometer resolution over
// the California window.
//
// Deprecated: use ExtendWith, the unified entry point —
// ExtendWith(ExtendOptions{CellSizeM: cellSize, DistM: distM}) is the
// equivalent call when cellSize is finer than the national raster.
// ExtendFine remains as a thin delegating shim over the same
// per-parameter memo.
func (s *Study) ExtendFine(cellSize, distM float64) *risk.FineExtension {
	return s.extendFine(cellSize, distM)
}

// extendCoarse is the memoized coarse-path extension shared by
// ExtendWith and the deprecated Extend shim. distM passes through to
// the analyzer unresolved: callers own defaulting.
func (s *Study) extendCoarse(distM float64) *risk.ExtensionResult {
	return s.mem.extend.Get(distM, func() *risk.ExtensionResult {
		return s.Analyzer.ExtendAndValidate(s.Season2019(), distM)
	})
}

// extendFine is the memoized fine-path extension shared by ExtendWith
// and the deprecated ExtendFine shim (cellSize 0 -> 800 m, distM 0 ->
// 804.67 m, resolved by the analyzer). Memoized per (cellSize, distM)
// pair as passed.
func (s *Study) extendFine(cellSize, distM float64) *risk.FineExtension {
	return s.mem.extendFine.Get([2]float64{cellSize, distM}, func() *risk.FineExtension {
		return s.Analyzer.ExtendAndValidateFine(s.Season2019(), cellSize, distM)
	})
}

// Impact computes the Figure 10 population matrix.
func (s *Study) Impact() *risk.ImpactMatrix { return s.Analyzer.PopulationImpact() }

// Metros computes the Figure 12 metro comparison.
func (s *Study) Metros() []risk.MetroRow { return s.Analyzer.MetroImpact() }

// Future computes the Figure 14 corridor projection.
func (s *Study) Future() *risk.FutureResult {
	return s.Analyzer.FutureRisk(s.Corridor())
}

// Corridor exposes the SLC-Denver corridor for rendering, built once per
// Study.
func (s *Study) Corridor() *ecoregion.Corridor {
	return s.mem.corridor.Get(func() *ecoregion.Corridor {
		return ecoregion.BuildCorridor(s.World)
	})
}

// Coverage computes the population-coverage exposure of the at-risk
// transceiver set (the abstract's "over 85 million" analog). radiusM 0
// selects the default serving radius.
func (s *Study) Coverage(radiusM float64) *risk.CoverageResult {
	return s.Analyzer.Coverage(radiusM)
}

// Escape computes the per-state HOT escape probabilities (the §3.11
// extension). thresholdAcres 0 selects the 300-acre default.
func (s *Study) Escape(thresholdAcres float64) []risk.StateEscape {
	return s.Analyzer.EscapeProbabilities(thresholdAcres)
}

// WUI measures the concentration of at-risk infrastructure in the
// Wildland-Urban Interface (§3.7's key finding).
func (s *Study) WUI() *risk.WUIResult {
	return s.Analyzer.WUIAnalysis(wui.Config{})
}

// Harden computes a §3.10 mitigation-prioritization plan: the budget
// at-risk sites whose hardening protects the most people.
func (s *Study) Harden(budget int) *risk.HardeningResult {
	return s.Analyzer.HardeningPlan(budget, 0)
}

// Emergency crosses the PSPS simulation with the coverage model: the
// population left without any in-service cell site per event day, and
// the wireless-911 exposure that implies (§3.10's motivation).
func (s *Study) Emergency() *risk.EmergencyImpact {
	return s.Analyzer.EmergencyAnalysis(s.Season2019(), powergrid.NetConfig{Seed: s.Cfg.Seed}, s.Cfg.Seed, 0)
}
