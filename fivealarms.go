// Package fivealarms reproduces "Five Alarms: Assessing the Vulnerability
// of US Cellular Communication Infrastructure to Wildfires" (Anderson,
// Barford & Barford, IMC 2020) as a self-contained Go library.
//
// The package builds a deterministic synthetic analog of the paper's three
// data layers — an OpenCelliD-style transceiver database, a GeoMAC-style
// historical fire catalog produced by a fire-spread simulator, and a USFS
// Wildfire-Hazard-Potential-style raster — over a shared "digital CONUS"
// (real city locations, state geography and provider identities; synthetic
// geometry). It then runs the paper's overlay analyses: the historical
// perimeter join (Table 1), the provider and radio-technology breakdowns
// (Tables 2-3), the WHP exposure and per-capita rankings (Figures 6-9),
// the population-impact and metro analyses (Figures 10-13), the 2019
// hold-out validation and half-mile extension (§3.4, §3.8), the
// fall-2019 PSPS case study (Figure 5), and the ecoregion future-risk
// projection (Figures 14-15).
//
// # Quick start
//
//	study := fivealarms.NewStudy(fivealarms.Config{Seed: 42})
//	overlay := study.WHPOverlay()
//	fmt.Println(overlay.AtRisk(), "transceivers in moderate+ hazard")
//
// Everything is deterministic in Config: identical configurations produce
// identical worlds, datasets, fires and results.
package fivealarms

import (
	"fivealarms/internal/cellnet"
	"fivealarms/internal/census"
	"fivealarms/internal/conus"
	"fivealarms/internal/ecoregion"
	"fivealarms/internal/powergrid"
	"fivealarms/internal/risk"
	"fivealarms/internal/whp"
	"fivealarms/internal/wildfire"
	"fivealarms/internal/wui"
)

// Config sizes and seeds a study. The zero value is a usable
// laptop-scale configuration; Full-scale reproduction settings are
// documented per field.
type Config struct {
	// Seed drives every stochastic choice. Defaults to 1.
	Seed uint64
	// CellSizeM is the world raster resolution in meters. Defaults to
	// 10_000 (10 km). The USFS WHP ships at 270 m; 2_700 is a practical
	// full-scale setting.
	CellSizeM float64
	// Transceivers is the synthetic OpenCelliD snapshot size. Defaults to
	// 150_000. The real snapshot has 5,364,949.
	Transceivers int
	// MappedFiresPerSeason bounds fire-simulation cost. Defaults to 40.
	MappedFiresPerSeason int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CellSizeM <= 0 {
		c.CellSizeM = 10000
	}
	if c.Transceivers <= 0 {
		c.Transceivers = 150000
	}
	if c.MappedFiresPerSeason <= 0 {
		c.MappedFiresPerSeason = 40
	}
	return c
}

// PaperScale returns the configuration approximating the paper's actual
// data volumes: a 5.36M-transceiver snapshot on a 2.7 km national raster.
// Expect several GB of memory and minutes of generation time.
func PaperScale(seed uint64) Config {
	return Config{
		Seed:                 seed,
		CellSizeM:            2700,
		Transceivers:         5364949,
		MappedFiresPerSeason: 400,
	}
}

// Study bundles the generated world, data layers and the risk engine.
type Study struct {
	Cfg      Config
	World    *conus.World
	WHP      *whp.Map
	Data     *cellnet.Dataset
	Counties *census.Counties
	Analyzer *risk.Analyzer
	Sim      *wildfire.Simulator
}

// NewStudy builds all layers for the configuration.
func NewStudy(cfg Config) *Study {
	cfg = cfg.withDefaults()
	world := conus.Build(conus.Config{Seed: cfg.Seed, CellSizeM: cfg.CellSizeM})
	hazard := whp.Build(world, world.Grid, whp.Config{})
	data := cellnet.Generate(world, cellnet.GenConfig{Seed: cfg.Seed, Total: cfg.Transceivers})
	counties := census.Synthesize(world, cfg.Seed)
	return &Study{
		Cfg:      cfg,
		World:    world,
		WHP:      hazard,
		Data:     data,
		Counties: counties,
		Analyzer: risk.New(world, hazard, data, counties),
		Sim:      wildfire.NewSimulator(world, hazard),
	}
}

// History simulates the calibrated 2000-2018 fire seasons.
func (s *Study) History() []*wildfire.Season {
	return wildfire.SimulateHistory(s.Sim, s.Cfg.Seed, s.Cfg.MappedFiresPerSeason)
}

// Season2019 simulates the hold-out validation season with the named
// anchor fires (Kincade, Getty, Saddle Ridge, Tick).
func (s *Study) Season2019() *wildfire.Season {
	return wildfire.Simulate2019(s.Sim, s.Cfg.Seed, s.Cfg.MappedFiresPerSeason)
}

// Table1 runs the historical overlay over the 2000-2018 seasons.
func (s *Study) Table1() []risk.YearOverlay {
	return s.Analyzer.HistoricalOverlay(s.History())
}

// Table2 computes the provider risk breakdown.
func (s *Study) Table2() []risk.ProviderRow { return s.Analyzer.ProviderRisk() }

// Table3 computes the radio-technology risk breakdown.
func (s *Study) Table3() []risk.RadioRow { return s.Analyzer.RadioTypeRisk() }

// WHPOverlay computes the Figure 7-9 class/state/per-capita exposure.
func (s *Study) WHPOverlay() *risk.WHPResult { return s.Analyzer.WHPOverlay() }

// CaseStudy runs the fall-2019 PSPS simulation (Figure 5).
func (s *Study) CaseStudy() *risk.CaseStudyResult {
	return s.Analyzer.CaseStudyFall2019(s.Season2019(), powergrid.NetConfig{Seed: s.Cfg.Seed}, s.Cfg.Seed)
}

// Validate runs the §3.4 hold-out validation.
func (s *Study) Validate() *risk.ValidationResult {
	return s.Analyzer.Validate(s.Season2019())
}

// Extend runs the §3.8 very-high extension experiment with the given
// buffer distance in meters (the paper uses 0.5 mi = 804.67 m; coarse
// rasters need at least one cell size to grow).
func (s *Study) Extend(distM float64) *risk.ExtensionResult {
	return s.Analyzer.ExtendAndValidate(s.Season2019(), distM)
}

// ExtendFine runs the §3.8 experiment at sub-kilometer resolution over
// the California window with the paper's true half-mile buffer
// (cellSize 0 -> 800 m, distM 0 -> 804.67 m).
func (s *Study) ExtendFine(cellSize, distM float64) *risk.FineExtension {
	return s.Analyzer.ExtendAndValidateFine(s.Season2019(), cellSize, distM)
}

// Impact computes the Figure 10 population matrix.
func (s *Study) Impact() *risk.ImpactMatrix { return s.Analyzer.PopulationImpact() }

// Metros computes the Figure 12 metro comparison.
func (s *Study) Metros() []risk.MetroRow { return s.Analyzer.MetroImpact() }

// Future computes the Figure 14 corridor projection.
func (s *Study) Future() *risk.FutureResult {
	return s.Analyzer.FutureRisk(ecoregion.BuildCorridor(s.World))
}

// Corridor exposes the SLC-Denver corridor for rendering.
func (s *Study) Corridor() *ecoregion.Corridor { return ecoregion.BuildCorridor(s.World) }

// Coverage computes the population-coverage exposure of the at-risk
// transceiver set (the abstract's "over 85 million" analog). radiusM 0
// selects the default serving radius.
func (s *Study) Coverage(radiusM float64) *risk.CoverageResult {
	return s.Analyzer.Coverage(radiusM)
}

// Escape computes the per-state HOT escape probabilities (the §3.11
// extension). thresholdAcres 0 selects the 300-acre default.
func (s *Study) Escape(thresholdAcres float64) []risk.StateEscape {
	return s.Analyzer.EscapeProbabilities(thresholdAcres)
}

// WUI measures the concentration of at-risk infrastructure in the
// Wildland-Urban Interface (§3.7's key finding).
func (s *Study) WUI() *risk.WUIResult {
	return s.Analyzer.WUIAnalysis(wui.Config{})
}

// Harden computes a §3.10 mitigation-prioritization plan: the budget
// at-risk sites whose hardening protects the most people.
func (s *Study) Harden(budget int) *risk.HardeningResult {
	return s.Analyzer.HardeningPlan(budget, 0)
}

// Emergency crosses the PSPS simulation with the coverage model: the
// population left without any in-service cell site per event day, and
// the wireless-911 exposure that implies (§3.10's motivation).
func (s *Study) Emergency() *risk.EmergencyImpact {
	return s.Analyzer.EmergencyAnalysis(s.Season2019(), powergrid.NetConfig{Seed: s.Cfg.Seed}, s.Cfg.Seed, 0)
}
