package fivealarms

// Tests for the parallel study pipeline: the serial escape hatch must be
// bit-identical to the parallel build, the memoized accessors must
// compute each derived layer exactly once, and a Study must survive
// many goroutines running every analysis concurrently (run under
// `go test -race` / `make race`).

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// stressCfg is small enough that the -race stress test stays fast.
var stressCfg = Config{Seed: 7, CellSizeM: 40000, Transceivers: 5000, MappedFiresPerSeason: 4}

func serialCfg() Config {
	c := stressCfg
	c.PipelineSerial = true
	return c
}

// analysisFingerprints serializes the headline analyses into strings;
// two studies with the same configuration must agree byte for byte.
// JSON over the raw risk results (maps marshal key-sorted, pointers
// dereference) is stricter than rendered tables: every exported field
// participates, not just the printed columns.
func analysisFingerprints(s *Study) map[string]string {
	return map[string]string{
		"table1":   asJSON(s.Table1()),
		"table2":   asJSON(s.Table2()),
		"table3":   asJSON(s.Table3()),
		"fig7":     asJSON(s.WHPOverlay()),
		"validate": asJSON(s.Validate()),
		"extend":   asJSON(s.ExtendWith(ExtendOptions{}).Coarse),
		"fig14":    asJSON(s.Future()),
		"casestudy": fmt.Sprintf("peak=%d out=%d powershare=%.6f",
			s.CaseStudy().PeakDay, s.CaseStudy().PeakOut, s.CaseStudy().PeakPowerShare),
		"mask": fmt.Sprintf("hist=%d s2019=%d",
			s.HistoryUnionMask().Count(), s.Season2019UnionMask().Count()),
	}
}

// asJSON marshals an analysis result for fingerprint comparison.
// Marshaling these fully-exported result structs cannot fail; a panic
// here means a result type grew an unmarshalable field.
func asJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestSerialPipelineIdentical asserts the acceptance criterion: a Study
// built by the parallel pipeline produces byte-identical analysis rows
// to one built through the PipelineSerial escape hatch.
func TestSerialPipelineIdentical(t *testing.T) {
	parallel := analysisFingerprints(NewStudy(stressCfg))
	serial := analysisFingerprints(NewStudy(serialCfg()))
	for name, want := range serial {
		if got := parallel[name]; got != want {
			t.Errorf("%s differs between serial and parallel builds:\nserial:\n%s\nparallel:\n%s", name, want, got)
		}
	}
}

// TestMemoizedAccessors asserts the warm-path contract: repeated calls
// return the first call's result without recomputation (pointer
// identity), so a second Table1/Validate/CaseStudy triggers zero new
// fire-season simulations.
func TestMemoizedAccessors(t *testing.T) {
	s := NewStudy(stressCfg)
	h1, h2 := s.History(), s.History()
	if len(h1) == 0 || &h1[0] != &h2[0] {
		t.Error("History not memoized")
	}
	if s.Season2019() != s.Season2019() {
		t.Error("Season2019 not memoized")
	}
	if s.Corridor() != s.Corridor() {
		t.Error("Corridor not memoized")
	}
	if s.WHPOverlay() != s.WHPOverlay() {
		t.Error("WHPOverlay not memoized")
	}
	if s.HistoryUnionMask() != s.HistoryUnionMask() {
		t.Error("HistoryUnionMask not memoized")
	}
	if s.Season2019UnionMask() != s.Season2019UnionMask() {
		t.Error("Season2019UnionMask not memoized")
	}
	d := 2.5 * s.World.Grid.CellSize
	if s.Extend(d) != s.Extend(d) {
		t.Error("Extend not memoized per distance")
	}
	if s.Extend(d) == s.Extend(2*d) {
		t.Error("Extend conflates distinct distances")
	}
	if s.ExtendFine(800, 0) != s.ExtendFine(800, 0) {
		t.Error("ExtendFine not memoized per parameter pair")
	}
}

// TestConcurrentAnalysesIdentical is the -race stress test: N goroutines
// run every analysis concurrently on one freshly built Study and each
// must observe exactly the serial reference results.
func TestConcurrentAnalysesIdentical(t *testing.T) {
	want := analysisFingerprints(NewStudy(serialCfg()))
	s := NewStudy(stressCfg)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*len(want))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got := analysisFingerprints(s)
			for name, w := range want {
				if got[name] != w {
					errs <- fmt.Sprintf("goroutine %d: %s diverged under concurrency", g, name)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestConfigValidate(t *testing.T) {
	valid := []Config{
		{},
		{Seed: 9},
		{CellSizeM: 2700, Transceivers: 100000, MappedFiresPerSeason: 50},
		PaperScale(3),
	}
	for i, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("valid config %d rejected: %v", i, err)
		}
	}
	invalid := []Config{
		{CellSizeM: math.NaN()},
		{CellSizeM: math.Inf(1)},
		{CellSizeM: -10},
		{CellSizeM: 1},    // absurdly fine national raster
		{CellSizeM: 1e12}, // coarser than the continent
		{Transceivers: -1},
		{Transceivers: 2_000_000_000},
		{MappedFiresPerSeason: -5},
		{MappedFiresPerSeason: 10_000_000},
	}
	for i, c := range invalid {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config %d accepted: %+v", i, c)
		}
	}
}

// TestConfigValidateMultiError asserts that Validate reports every
// offending field at once (errors.Join), not just the first one, and
// that each violation stays individually addressable with errors.Is
// over the joined tree.
func TestConfigValidateMultiError(t *testing.T) {
	c := Config{CellSizeM: -10, Transceivers: -1, MappedFiresPerSeason: -5}
	err := c.Validate()
	if err == nil {
		t.Fatal("three-violation config accepted")
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("Validate error does not unwrap to a list: %T", err)
	}
	if n := len(joined.Unwrap()); n != 3 {
		t.Fatalf("violations reported = %d, want 3: %v", n, err)
	}
	for _, want := range []string{"CellSizeM", "Transceivers", "MappedFiresPerSeason"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error does not mention %s: %v", want, err)
		}
	}

	// A single violation still reads as one plain error.
	one := Config{Transceivers: -1}
	if err := one.Validate(); err == nil || strings.Contains(err.Error(), "\n") {
		t.Errorf("single violation should yield one line, got %v", err)
	}
}

// TestWithPaperScale asserts the whole-config option semantics: it
// replaces everything (like WithConfig), and later field options
// shrink it back down to a buildable test scale.
func TestWithPaperScale(t *testing.T) {
	// Option-composition check without a build: the assembled config is
	// paper scale except the overridden fields.
	var cfg Config
	for _, opt := range []Option{
		WithSeed(99), // overwritten by the whole-config option
		WithPaperScale(3),
		WithTransceivers(5000),
		WithCellSizeM(40000),
		WithFiresPerSeason(4),
	} {
		opt(&cfg)
	}
	want := PaperScale(3)
	want.Transceivers = 5000
	want.CellSizeM = 40000
	want.MappedFiresPerSeason = 4
	if cfg != want {
		t.Fatalf("assembled config = %+v, want %+v", cfg, want)
	}
	if cfg.Seed != 3 {
		t.Errorf("WithPaperScale should carry its own seed, got %d", cfg.Seed)
	}

	// The same option list builds a real (cheap) study.
	s, err := NewStudyWithOptions(WithPaperScale(3),
		WithTransceivers(5000), WithCellSizeM(40000), WithFiresPerSeason(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg != want {
		t.Errorf("built Cfg = %+v, want %+v", s.Cfg, want)
	}
}

func TestNewStudyWithOptions(t *testing.T) {
	s, err := NewStudyWithOptions(
		WithSeed(11),
		WithCellSizeM(40000),
		WithTransceivers(5000),
		WithFiresPerSeason(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 11, CellSizeM: 40000, Transceivers: 5000, MappedFiresPerSeason: 4}
	if s.Cfg != want {
		t.Errorf("Cfg = %+v, want %+v", s.Cfg, want)
	}

	// The thin-wrapper contract: NewStudy with the same config produces
	// the same results.
	legacy := NewStudy(want)
	if a, b := asJSON(s.Table2()), asJSON(legacy.Table2()); a != b {
		t.Error("NewStudyWithOptions and NewStudy disagree for the same config")
	}

	if _, err := NewStudyWithOptions(WithCellSizeM(-1)); err == nil {
		t.Error("negative CellSizeM accepted")
	}
	if _, err := NewStudyWithOptions(WithTransceivers(-7)); err == nil {
		t.Error("negative Transceivers accepted")
	}
	if _, err := NewStudyWithOptions(WithRasterWorkers(-1)); err == nil {
		t.Error("negative RasterWorkers accepted")
	}
	if _, err := NewStudyWithOptions(WithRasterWorkers(1 << 20)); err == nil {
		t.Error("RasterWorkers above the pool maximum accepted")
	}

	// An explicit worker count survives option composition and must not
	// change any result: the tiled kernels are bit-identical per band
	// count, so the overlay tables match the serial study's exactly.
	s3, err := NewStudyWithOptions(WithConfig(want), WithRasterWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if s3.Cfg.RasterWorkers != 3 {
		t.Errorf("RasterWorkers = %d, want 3", s3.Cfg.RasterWorkers)
	}
	if a, b := asJSON(s3.Table2()), asJSON(legacy.Table2()); a != b {
		t.Error("RasterWorkers=3 changed Table 2 versus the serial study")
	}

	// WithConfig seeds the whole struct; later options override fields.
	s2, err := NewStudyWithOptions(WithConfig(want), WithSeed(12), WithSerialPipeline())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Cfg.Seed != 12 || !s2.Cfg.PipelineSerial || s2.Cfg.CellSizeM != 40000 {
		t.Errorf("option composition: %+v", s2.Cfg)
	}
}

func TestExtendWithSelectionRule(t *testing.T) {
	s := NewStudy(stressCfg)

	coarse := s.ExtendWith(ExtendOptions{})
	if coarse.Fine || coarse.Coarse == nil || coarse.Window != nil {
		t.Fatalf("zero options should take the coarse path: %+v", coarse)
	}
	// Default coarse buffer: max(half mile, one cell) = one 40 km cell.
	if coarse.DistM != s.World.Grid.CellSize {
		t.Errorf("coarse DistM = %v, want one cell (%v)", coarse.DistM, s.World.Grid.CellSize)
	}

	fine := s.ExtendWith(ExtendOptions{CellSizeM: 800})
	if !fine.Fine || fine.Window == nil || fine.Coarse != nil {
		t.Fatalf("sub-raster CellSizeM should take the fine path: %+v", fine)
	}
	// The fine default buffer is the exact half mile (0.5 x 1609.344 m).
	if fine.CellSizeM != 800 || fine.DistM != 804.672 {
		t.Errorf("fine resolved params = (%v, %v)", fine.CellSizeM, fine.DistM)
	}

	// A requested cell at or above the national raster stays coarse.
	if r := s.ExtendWith(ExtendOptions{CellSizeM: s.World.Grid.CellSize}); r.Fine {
		t.Error("CellSizeM == national raster should stay coarse")
	}

	// Consistency with the legacy entry points it unifies.
	if coarse.Coarse != s.Extend(coarse.DistM) {
		t.Error("coarse path does not share the Extend memo")
	}
	if fine.Window != s.ExtendFine(800, 0) {
		t.Error("fine path does not share the ExtendFine memo")
	}
}
