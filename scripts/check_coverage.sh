#!/usr/bin/env bash
# check_coverage.sh — run the full suite with coverage and enforce the
# per-package floors in COVERAGE_FLOOR.txt.
#
# Usage: scripts/check_coverage.sh [profile.out]
#
# With an argument, also writes the merged coverage profile there (the
# CI coverage job uploads it as an artifact). Exit codes: 0 all floors
# hold, 1 a package regressed or a floored package produced no coverage
# line (deleted tests count as regressions).
set -euo pipefail

cd "$(dirname "$0")/.."
profile="${1:-}"

args=(test -count=1 -cover ./...)
if [[ -n "$profile" ]]; then
  args=(test -count=1 -coverprofile="$profile" ./...)
fi

out="$(go "${args[@]}")" || { echo "$out"; echo "check_coverage: tests failed" >&2; exit 1; }
echo "$out"

fail=0
while read -r pkg floor; do
  [[ -z "$pkg" || "$pkg" == \#* ]] && continue
  line="$(echo "$out" | awk -v p="$pkg" '$1 == "ok" && $2 == p')"
  pct="$(echo "$line" | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*' || true)"
  if [[ -z "$pct" ]]; then
    echo "check_coverage: no coverage reported for $pkg (floor $floor%)" >&2
    fail=1
    continue
  fi
  if awk -v got="$pct" -v want="$floor" 'BEGIN { exit !(got < want) }'; then
    echo "check_coverage: $pkg at ${pct}% is below its ${floor}% floor" >&2
    fail=1
  fi
done < COVERAGE_FLOOR.txt

if [[ "$fail" -ne 0 ]]; then
  echo "check_coverage: coverage regressed; add tests (or dead-code-delete), never lower a floor" >&2
  exit 1
fi
echo "check_coverage: all floors hold"
