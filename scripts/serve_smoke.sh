#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the risk-query server: boot
# fivealarmsd on a random port at test scale, probe /v1/healthz and one
# /v1/risk/point query through fivealarmsload -smoke, then SIGTERM the
# server and require a clean graceful drain.
#
# Usage: scripts/serve_smoke.sh
# Exit codes: 0 all probes passed and the server drained cleanly,
# 1 anything else (boot timeout, probe failure, unclean shutdown).
set -euo pipefail

cd "$(dirname "$0")/.."

log="$(mktemp)"
cleanup() {
  [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true
  rm -f "$log"
}
trap cleanup EXIT

go build -o /tmp/fivealarmsd.smoke ./cmd/fivealarmsd
go build -o /tmp/fivealarmsload.smoke ./cmd/fivealarmsload

# Port 0: the kernel picks a free port; the server prints the bound
# address as its first stdout line.
/tmp/fivealarmsd.smoke -addr 127.0.0.1:0 \
  -seed 42 -cell 40000 -transceivers 5000 -fires 5 -warm >"$log" 2>&1 &
server_pid=$!

addr=""
for _ in $(seq 1 120); do
  addr="$(grep -o 'http://[0-9.:]*' "$log" || true)"
  [[ -n "$addr" ]] && break
  kill -0 "$server_pid" 2>/dev/null || { echo "serve_smoke: server died during boot" >&2; cat "$log" >&2; exit 1; }
  sleep 0.25
done
if [[ -z "$addr" ]]; then
  echo "serve_smoke: server did not report its address in 30s" >&2
  cat "$log" >&2
  exit 1
fi

/tmp/fivealarmsload.smoke -smoke -addr "$addr"

# Graceful drain: SIGTERM must produce a zero exit.
kill -TERM "$server_pid"
if ! wait "$server_pid"; then
  echo "serve_smoke: server exited nonzero on SIGTERM" >&2
  cat "$log" >&2
  exit 1
fi
server_pid=""
echo "serve_smoke: ok ($addr, drained cleanly)"
